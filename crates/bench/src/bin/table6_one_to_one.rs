//! Table VI — performance on the single-table / one-to-one datasets (Covtype, Household) with
//! the additional ARDA and AutoFeature baselines, for LR / XGB / RF (the paper omits DeepFM here
//! because these are multi-class tasks).
//!
//! Run: `cargo run --release -p feataug-bench --bin table6_one_to_one`

use feataug_bench::datasets::build_task;
use feataug_bench::methods::{run_method, Method};
use feataug_bench::report::{format_metric, metric_header, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, feature_budget, models_from_env};
use feataug_ml::{Metric, ModelKind};

fn main() {
    let datasets = datasets_from_env(feataug_datagen::one_to_one_names());
    let models = models_from_env(&[
        ModelKind::Linear,
        ModelKind::GradientBoosting,
        ModelKind::RandomForest,
    ]);
    let budget = feature_budget();
    let seed = base_seed();

    print_title("Table VI: performance on single-table / one-to-one datasets");
    for model in &models {
        println!("\n**Model: {model}**\n");
        let tasks: Vec<_> = datasets
            .iter()
            .map(|name| (name.clone(), build_task(name)))
            .collect();
        let mut header: Vec<String> = vec!["Method".to_string()];
        for (name, ds) in &tasks {
            let metric = Metric::for_task(ds.task.task);
            header.push(format!("{name} ({})", metric_header(metric)));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_header(&header_refs);

        for method in Method::table6_methods() {
            let mut cells = vec![method.name()];
            for (_, ds) in &tasks {
                if method.classification_only() && !ds.task.task.is_classification() {
                    cells.push("-".to_string());
                    continue;
                }
                let outcome = run_method(&ds.task, method, *model, budget, seed);
                cells.push(format_metric(&outcome.result));
            }
            print_row(&cells);
        }
    }
}
