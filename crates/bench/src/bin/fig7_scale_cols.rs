//! Figure 7 — running time of FeatAug as the number of columns in the relevant table grows
//! (the "Student-Wide" construction: the Student relevant table is duplicated horizontally),
//! split into QTI time, warm-up time and query-generation time.
//!
//! Run: `cargo run --release -p feataug-bench --bin fig7_scale_cols`

use feataug::FeatAug;
use feataug_bench::datasets::{build_task, to_aug_task};
use feataug_bench::methods::{feataug_config, FeatAugVariant};
use feataug_bench::report::{format_secs, print_header, print_row, print_title};
use feataug_bench::{base_seed, feature_budget, models_from_env};
use feataug_datagen::widen_relevant;
use feataug_ml::ModelKind;

/// Column counts swept (the paper sweeps 20..100 on Student-Wide).
const COLS: [usize; 5] = [20, 40, 60, 80, 100];

fn main() {
    let models = models_from_env(&[ModelKind::Linear, ModelKind::GradientBoosting]);
    let seed = base_seed();
    let budget = feature_budget();
    let base = build_task("student");

    for model in &models {
        print_title(&format!(
            "Figure 7: running time vs. #columns in R (Student-Wide), model = {model}"
        ));
        print_header(&[
            "# cols",
            "QTI Time",
            "Warm-up Time",
            "Generate Time",
            "Total Time",
        ]);
        for cols in COLS {
            let widened = widen_relevant(&base.synthetic, cols);
            let task = to_aug_task(&widened);
            let cfg = feataug_config(*model, FeatAugVariant::Full, budget, seed);
            let result = FeatAug::new(cfg).augment(&task);
            print_row(&[
                widened.relevant.num_columns().to_string(),
                format_secs(result.timing.qti),
                format_secs(result.timing.warmup),
                format_secs(result.timing.generate),
                format_secs(result.timing.total()),
            ]);
        }
    }
}
