//! Table V — query-template information for the Covtype and Household datasets.
//!
//! Run: `cargo run --release -p feataug-bench --bin table5_templates_oto`

use feataug_bench::datasets::build_task;
use feataug_bench::report::{print_header, print_row, print_title};
use feataug_tabular::AggFunc;

fn main() {
    print_title("Table V: query-template information (Covtype / Household)");
    let funcs: Vec<&str> = AggFunc::all().iter().map(|f| f.name()).collect();
    println!("F (all datasets): {}\n", funcs.join(", "));

    print_header(&["Dataset", "# of A", "# of attr", "K", "# of T"]);
    for name in feataug_datagen::one_to_one_names() {
        let ds = build_task(name);
        let stats = ds.synthetic.stats();
        print_row(&[
            name.to_string(),
            stats.n_agg_columns.to_string(),
            stats.n_predicate_attrs.to_string(),
            ds.synthetic.key_columns.join(", "),
            format!(
                "2^{} = {}",
                stats.n_predicate_attrs,
                stats.n_query_templates()
            ),
        ]);
    }
}
