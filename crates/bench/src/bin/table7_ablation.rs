//! Table VII — ablation study of FeatAug: without Query Template Identification ("NoQTI"),
//! without the warm-up phase ("NoWU"), and the full system, on the four one-to-many datasets and
//! every downstream model.
//!
//! Run: `cargo run --release -p feataug-bench --bin table7_ablation`

use feataug_bench::datasets::build_task;
use feataug_bench::methods::{run_method, FeatAugVariant, Method};
use feataug_bench::report::{format_metric, metric_header, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, feature_budget, models_from_env};
use feataug_ml::{Metric, ModelKind};

fn main() {
    let datasets = datasets_from_env(feataug_datagen::one_to_many_names());
    let models = models_from_env(ModelKind::all());
    let budget = feature_budget();
    let seed = base_seed();

    print_title("Table VII: ablation study of FeatAug (NoQTI / NoWU / Full)");
    let variants = [
        ("FeatAug (NoQTI)", FeatAugVariant::NoQti),
        ("FeatAug (NoWU)", FeatAugVariant::NoWu),
        ("FeatAug (Full)", FeatAugVariant::Full),
    ];

    for model in &models {
        println!("\n**Model: {model}**\n");
        let tasks: Vec<_> = datasets
            .iter()
            .map(|name| (name.clone(), build_task(name)))
            .collect();
        let mut header: Vec<String> = vec!["Variant".to_string()];
        for (name, ds) in &tasks {
            let metric = Metric::for_task(ds.task.task);
            header.push(format!("{name} ({})", metric_header(metric)));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_header(&header_refs);

        for (label, variant) in &variants {
            let mut cells = vec![label.to_string()];
            for (_, ds) in &tasks {
                let outcome = run_method(&ds.task, Method::FeatAug(*variant), *model, budget, seed);
                cells.push(format_metric(&outcome.result));
            }
            print_row(&cells);
        }
    }
}
