//! Figure 8 — running time of FeatAug as the number of rows in the training table D grows,
//! split into QTI time, warm-up time and query-generation time, on the four one-to-many
//! datasets.
//!
//! Run: `cargo run --release -p feataug-bench --bin fig8_scale_rows_d`
//! (defaults to the LR model; set `FEATAUG_MODELS` to sweep more).

use feataug::FeatAug;
use feataug_bench::datasets::{dataset_scale, to_aug_task};
use feataug_bench::methods::{feataug_config, FeatAugVariant};
use feataug_bench::report::{format_secs, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, feature_budget, models_from_env};
use feataug_datagen::{generate_by_name, DatasetScale};
use feataug_ml::ModelKind;

/// Fractions of the configured training-table size swept by the figure.
const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn main() {
    let datasets = datasets_from_env(feataug_datagen::one_to_many_names());
    let models = models_from_env(&[ModelKind::Linear]);
    let seed = base_seed();
    let budget = feature_budget();
    let gen_cfg = dataset_scale();

    for name in &datasets {
        let full = generate_by_name(name, &gen_cfg).expect("known dataset");
        for model in &models {
            print_title(&format!(
                "Figure 8: running time vs. #rows in D on {name}, model = {model}"
            ));
            print_header(&[
                "# rows in D",
                "QTI Time",
                "Warm-up Time",
                "Generate Time",
                "Total Time",
            ]);
            for frac in FRACTIONS {
                let rows = ((full.train.num_rows() as f64) * frac).round().max(50.0) as usize;
                let scaled = DatasetScale::train_rows(rows).apply(&full);
                let task = to_aug_task(&scaled);
                let cfg = feataug_config(*model, FeatAugVariant::Full, budget, seed);
                let result = FeatAug::new(cfg).augment(&task);
                print_row(&[
                    rows.to_string(),
                    format_secs(result.timing.qti),
                    format_secs(result.timing.warmup),
                    format_secs(result.timing.generate),
                    format_secs(result.timing.total()),
                ]);
            }
        }
    }
}
