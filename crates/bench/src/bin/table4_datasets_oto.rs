//! Table IV — detailed information of the Covtype and Household datasets (single-table /
//! one-to-one scenario).
//!
//! Run: `cargo run --release -p feataug-bench --bin table4_datasets_oto`

use feataug_bench::datasets::build_task;
use feataug_bench::report::{print_header, print_row, print_title};

fn main() {
    print_title("Table IV: detailed information of the Covtype / Household stand-ins");
    print_header(&[
        "Dataset",
        "# of Tables",
        "# of rows in R",
        "# of Train/Valid/Test",
    ]);
    for name in feataug_datagen::one_to_one_names() {
        let ds = build_task(name);
        let stats = ds.synthetic.stats();
        let n = stats.train_rows;
        let train = (n as f64 * 0.6).round() as usize;
        let valid = (n as f64 * 0.2).round() as usize;
        let test = n - train - valid;
        print_row(&[
            name.to_string(),
            stats.n_tables.to_string(),
            stats.relevant_rows.to_string(),
            format!("{train}/{valid}/{test}"),
        ]);
    }
}
