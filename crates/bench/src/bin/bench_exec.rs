//! QueryEngine vs. naive candidate evaluation on the tmall micro-bench,
//! recorded as `BENCH_exec.json` so the repository's perf trajectory has a
//! machine-readable data point per change.
//!
//! Run: `cargo run --release -p feataug-bench --bin bench_exec`
//!
//! Six candidate pools are measured, each through three paths — the
//! reference `PredicateQuery::augment` path, the compiled [`QueryEngine`]
//! evaluating serially, and the engine's thread-parallel
//! [`QueryEngine::feature_batch`] at [`feataug::default_workers`] workers
//! (a fresh engine per round on every path, so compilation is paid exactly
//! as one search pays it):
//!
//! * `basic_aggs` — random queries over the five cheap aggregation functions
//!   (`FeatAugConfig::fast`'s set). This is the headline number: it isolates
//!   the evaluation machinery (filter, group, join vs. mask, gather) that the
//!   engine replaces.
//! * `all_aggs` — random queries over all fifteen functions.
//! * `order_stats` — random queries over the order-statistic family
//!   (`MEDIAN`, `MAD`, `MODE`, `ENTROPY`, `COUNT_DISTINCT`): the reference
//!   path pays a copy + sort per candidate group, the engine merges
//!   selections out of its memoized sorted-group value index. Recorded as
//!   the top-level `order_stat_speedup`.
//! * `moments` — random queries over the two-pass moment family (`VAR`,
//!   `VAR_SAMPLE`, `STD`, `STD_SAMPLE`, `KURTOSIS`), streamed without
//!   per-group value buffers. Recorded as the top-level `moment_speedup`.
//! * `dfs_trivial` — trivial-predicate, full-key queries (the Featuretools
//!   pool shape): the reference path clones and re-groups the whole table,
//!   the engine gathers from its cached index.
//! * `order_trivial` — trivial-predicate order statistics: every candidate
//!   reads its groups' memoized pre-sorted runs in place, no copy and no
//!   per-candidate sort at all.
//!
//! `batch_speedup` is batch-vs-naive (same baseline as `speedup`);
//! `batch_vs_engine` isolates what threading adds over the serial engine and
//! is ~1.0 on a single-core machine — the recorded `workers` count says which
//! regime produced the numbers.
//!
//! `transform_rows_per_sec` measures the offline→online serving path: a
//! compiled `AugModel` (a plan of 16 mixed queries) transforming a fresh
//! table 10× the training table's size, model reused across rounds so the
//! steady-state number isolates the key-mapping + gather cost that every
//! served table pays (the per-group aggregation is paid once, on round one).
//! `parallel_transform_speedup` is the same workload's serial-vs-fanned
//! ratio (`QueryEngine::transform_threads` at 1 worker vs the pool-sized
//! default — ~1.0 on a single-core machine, like `batch_vs_engine`), and
//! `serve_lookups_per_sec` drives the prepared [`feataug::ServingHandle`]
//! warm: single-key lookups into a reused buffer, the zero-allocation
//! online hot path.
//!
//! The sharded section drives the same workload through a 4-way
//! [`feataug::ShardRouter`]: `shard_lookups_per_sec` is the warm routed
//! hot path (hash + owning-shard probe on top of the prepared lookup),
//! `shard_count` records the partition width, and `cancelled_rate` counts
//! the closed-loop tier requests a `CancelToken` preempted *mid-lookup*
//! under tight deadlines (0.0 when warm lookups beat the deadline — the
//! field exists so the trajectory is visible once they don't).
//!
//! The schema section exercises the multi-hop front end on the generated
//! Instacart schema (`users → orders → order_items → products`):
//! `path_search_candidates` counts every join path enumerated to the hop
//! cap, `paths_promoted` counts the strictly-fewer paths the proxy gate
//! promoted to a full search, and `hop2_transform_rows_per_sec` drives a
//! compiled 2-hop plan over a 10×-sized training table — the steady-state
//! cost of serving through a composed gather-map view instead of a
//! hand-maintained pre-joined table.

use std::time::Instant;

use feataug::exec::QueryEngine;
use feataug::pipeline::AugModel;
use feataug::schema::{enumerate_paths, fit_schema, SchemaGraph, SchemaTask};
use feataug::{
    AugPlan, FeatAugConfig, PlanHop, PlannedQuery, PredicateQuery, QueryCodec, QueryTemplate,
    ShardRouter, ShardedServingHandle,
};
use feataug_datagen::{instacart, tmall, GenConfig};
use feataug_ml::{ModelKind, Task};
use feataug_tabular::{AggFunc, Predicate, Table, Value};

use rand::rngs::StdRng;
use rand::SeedableRng;

const N_QUERIES: usize = 96;
const ROUNDS: usize = 5;

struct PoolResult {
    name: &'static str,
    naive_us: f64,
    engine_us: f64,
    batch_us: f64,
}

impl PoolResult {
    fn speedup(&self) -> f64 {
        self.naive_us / self.engine_us
    }

    fn batch_speedup(&self) -> f64 {
        self.naive_us / self.batch_us
    }

    fn batch_vs_engine(&self) -> f64 {
        self.engine_us / self.batch_us
    }
}

fn sample_pool(
    aggs: &[AggFunc],
    ds: &feataug_datagen::SyntheticDataset,
    seed: u64,
) -> Vec<PredicateQuery> {
    let template = QueryTemplate::new(
        aggs.to_vec(),
        ds.agg_columns.clone(),
        ds.predicate_attrs.clone(),
        ds.key_columns.clone(),
    );
    let codec = QueryCodec::build(&template, &ds.relevant).expect("codec over tmall");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N_QUERIES)
        .map(|_| codec.decode(&codec.space().sample(&mut rng)))
        .collect()
}

fn time_pool(
    name: &'static str,
    pool: &[PredicateQuery],
    train: &Table,
    relevant: &Table,
    workers: usize,
) -> PoolResult {
    // Checksums keep all paths honest about doing identical work.
    let mut naive_checksum = 0usize;
    let mut engine_checksum = 0usize;
    let mut batch_checksum = 0usize;
    let mut naive_best = f64::INFINITY;
    let mut engine_best = f64::INFINITY;
    let mut batch_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for q in pool {
            let (augmented, fname) = q.augment(train, relevant).expect("naive path");
            naive_checksum += augmented.column(&fname).map(|c| c.len()).unwrap_or(0);
        }
        naive_best = naive_best.min(start.elapsed().as_nanos() as f64 / pool.len() as f64);

        let start = Instant::now();
        let engine = QueryEngine::new(train, relevant);
        for q in pool {
            let (_, values) = engine.feature(q).expect("engine path");
            engine_checksum += values.len();
        }
        engine_best = engine_best.min(start.elapsed().as_nanos() as f64 / pool.len() as f64);

        let start = Instant::now();
        let batch_engine = QueryEngine::new(train, relevant);
        for result in batch_engine.feature_batch_threads(pool, workers) {
            let (_, values) = result.expect("batch path");
            batch_checksum += values.len();
        }
        batch_best = batch_best.min(start.elapsed().as_nanos() as f64 / pool.len() as f64);
    }
    assert_eq!(
        naive_checksum, engine_checksum,
        "{name}: paths did different work"
    );
    assert_eq!(
        naive_checksum, batch_checksum,
        "{name}: batch path did different work"
    );
    PoolResult {
        name,
        naive_us: naive_best / 1e3,
        engine_us: engine_best / 1e3,
        batch_us: batch_best / 1e3,
    }
}

fn main() {
    let gen_cfg = GenConfig {
        n_entities: 800,
        fanout: 12,
        n_noise_cols: 1,
        seed: 3,
    };
    let ds = tmall::generate(&gen_cfg);
    let workers = feataug::default_workers();

    let basic = sample_pool(AggFunc::basic(), &ds, 11);
    let all = sample_pool(AggFunc::all(), &ds, 12);
    let order_stats = sample_pool(
        &[
            AggFunc::Median,
            AggFunc::Mad,
            AggFunc::Mode,
            AggFunc::Entropy,
            AggFunc::CountDistinct,
        ],
        &ds,
        13,
    );
    let moments = sample_pool(
        &[
            AggFunc::Var,
            AggFunc::VarSample,
            AggFunc::Std,
            AggFunc::StdSample,
            AggFunc::Kurtosis,
        ],
        &ds,
        14,
    );
    let mut dfs: Vec<PredicateQuery> = Vec::new();
    for &agg in AggFunc::basic() {
        for col in &ds.agg_columns {
            dfs.push(PredicateQuery {
                agg,
                agg_column: col.clone(),
                predicate: Predicate::True,
                group_keys: ds.key_columns.clone(),
            });
        }
    }
    // Trivial-predicate order statistics (the Featuretools pool shape for the
    // expensive half of Table II): each candidate reads its groups' memoized
    // pre-sorted runs in place — the shape where the order index pays most.
    let mut order_trivial: Vec<PredicateQuery> = Vec::new();
    for &agg in &[
        AggFunc::Median,
        AggFunc::Mad,
        AggFunc::Mode,
        AggFunc::Entropy,
        AggFunc::CountDistinct,
    ] {
        for col in &ds.agg_columns {
            order_trivial.push(PredicateQuery {
                agg,
                agg_column: col.clone(),
                predicate: Predicate::True,
                group_keys: ds.key_columns.clone(),
            });
        }
    }

    // ---- Transform throughput (the offline→online serving path) -----------
    // A fitted plan (a mixed pool of planned queries) applied to a fresh
    // table 10× the training table's size, reusing one compiled `AugModel`
    // across rounds exactly as a serving process would: the per-group
    // aggregation is paid on the first round, so the best-of-rounds time
    // measures steady-state transform (key mapping + gather) throughput.
    let planned: Vec<PlannedQuery> = basic
        .iter()
        .take(12)
        .chain(order_stats.iter().take(4))
        .map(|q| PlannedQuery {
            query: q.clone(),
            loss: 0.0,
        })
        .collect();
    let n_planned = planned.len();
    let plan = AugPlan::new(ds.relevant.name(), ds.key_columns.clone(), planned);
    // Shared table ownership: the serving tier (and the ingest harness's
    // scoped lookup threads) need a `'static` handle.
    let model = AugModel::compile_shared(
        plan,
        std::sync::Arc::new(ds.train.clone()),
        std::sync::Arc::new(ds.relevant.clone()),
    )
    .expect("plan compiles");
    let train_rows = ds.train.num_rows();
    let big_indices: Vec<usize> = (0..train_rows * 10).map(|i| i % train_rows).collect();
    let big = ds.train.take(&big_indices);
    let mut transform_best = f64::INFINITY;
    let mut transform_cols = 0usize;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let out = model.transform(&big).expect("transform path");
        transform_best = transform_best.min(start.elapsed().as_secs_f64());
        transform_cols = out.num_columns();
    }
    let transform_rows_per_sec = big.num_rows() as f64 / transform_best;

    // ---- Parallel transform: serial vs pool-sized fan-out -----------------
    // Same workload through the engine-level entry point at 1 worker and at
    // the pool-sized count; per-group aggregations are already memoized, so
    // the ratio isolates what fanning the gathers adds.
    let planned_queries: Vec<PredicateQuery> = model
        .plan()
        .queries
        .iter()
        .map(|p| p.query.clone())
        .collect();
    let transform_workers = feataug::workers_for_pool(planned_queries.len());
    let mut serial_best = f64::INFINITY;
    let mut parallel_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let serial_out = model
            .engine()
            .transform_threads(&planned_queries, &big, 1)
            .expect("serial transform");
        serial_best = serial_best.min(start.elapsed().as_secs_f64());

        // Release the serial output before timing the fanned run: holding it
        // across the second call forces that call onto fresh (cold) pages
        // while the first reuses the previous round's freed ones — an
        // allocator artifact that read as a phantom parallel regression on
        // single-CPU hosts where both calls take the identical serial path.
        let serial_cols = serial_out.len();
        drop(serial_out);

        let start = Instant::now();
        let parallel_out = model
            .engine()
            .transform_threads(&planned_queries, &big, transform_workers)
            .expect("parallel transform");
        parallel_best = parallel_best.min(start.elapsed().as_secs_f64());
        assert_eq!(serial_cols, parallel_out.len());
    }
    let parallel_transform_speedup = serial_best / parallel_best;

    // ---- Prepared serving lookups (the online hot path) -------------------
    // One warm `ServingHandle`, single-key lookups into a reused buffer over
    // every train key: the steady-state request rate a feature server sees.
    let handle = model.prepare().expect("prepare serving handle");
    let serve_keys: Vec<Vec<Value>> = (0..train_rows)
        .map(|row| {
            ds.key_columns
                .iter()
                .map(|k| ds.train.value(row, k).expect("key value"))
                .collect()
        })
        .collect();
    let mut lookup_out: Vec<Option<f64>> = Vec::with_capacity(handle.num_features());
    let mut lookup_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for key in &serve_keys {
            handle
                .lookup(key, &mut lookup_out)
                .expect("prepared lookup");
            // Keep dead-code elimination away without timing any per-lookup
            // bookkeeping — the metric must measure the lookup alone.
            std::hint::black_box(&lookup_out);
        }
        lookup_best = lookup_best.min(start.elapsed().as_secs_f64());
    }
    // Outside the timed region: the warm path must actually hit features.
    let lookup_hits: usize = serve_keys
        .iter()
        .map(|key| {
            handle
                .lookup(key, &mut lookup_out)
                .expect("prepared lookup");
            lookup_out.iter().filter(|v| v.is_some()).count()
        })
        .sum();
    assert!(lookup_hits > 0, "warm lookups must hit some features");
    let serve_lookups_per_sec = serve_keys.len() as f64 / lookup_best;

    // ---- Serving-tier latency distribution (the survivable front door) ----
    // A closed-loop load generator: N client threads drive the admission-
    // controlled `ServingTier`, each waiting for its answer before the next
    // submit, per-request wall clock collected. p50/p99 record the tail a
    // deadline policy would be tuned against; `shed_rate` records admission
    // control's refusals (0.0 when a closed loop never outruns the workers —
    // the field's trajectory matters under future overload shapes).
    let tier_handle = std::sync::Arc::new(model.prepare().expect("prepare tier handle"));
    let tier = feataug::ServingTier::new(
        std::sync::Arc::clone(&tier_handle),
        feataug::TierConfig::default(),
    );
    const TIER_CLIENTS: usize = 4;
    const TIER_REQUESTS_PER_CLIENT: usize = 2_000;
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..TIER_CLIENTS)
            .map(|c| {
                let tier = &tier;
                let serve_keys = &serve_keys;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(TIER_REQUESTS_PER_CLIENT);
                    for i in 0..TIER_REQUESTS_PER_CLIENT {
                        let key = &serve_keys[(c + i * TIER_CLIENTS) % serve_keys.len()];
                        let start = Instant::now();
                        match tier.lookup(key) {
                            Ok(row) => {
                                std::hint::black_box(&row);
                                local.push(start.elapsed().as_nanos() as f64 / 1e3);
                            }
                            Err(feataug::TierError::Shed { .. }) => {}
                            Err(e) => panic!("tier load generator hit {e}"),
                        }
                    }
                    local
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("tier client thread"))
            .collect()
    });
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let percentile = |sorted: &[f64], p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    let p50_lookup_us = percentile(&latencies_us, 0.50);
    let p99_lookup_us = percentile(&latencies_us, 0.99);
    let tier_stats = tier.stats();
    assert_eq!(
        tier_stats.submitted,
        TIER_CLIENTS * TIER_REQUESTS_PER_CLIENT,
        "the load generator must account for every request"
    );
    let shed_rate = tier_stats.shed as f64 / tier_stats.submitted.max(1) as f64;
    assert!(
        latencies_us.len() + tier_stats.shed >= TIER_CLIENTS * TIER_REQUESTS_PER_CLIENT,
        "every request either answered or shed"
    );

    // ---- Live ingestion under closed-loop lookups (the epoch path) --------
    // Client threads hammer one prepared handle in a closed loop while the
    // main thread appends relevant-table batches through `append_relevant`.
    // `ingest_rows_per_sec` is the pure append throughput (copy-on-write
    // epoch build + publish); `staleness_us` is the median delay from an
    // epoch's publication until the concurrently-hammered handle serves it —
    // the freshness lag a feature server actually exposes.
    let ingest_model = AugModel::compile_shared(
        model.plan().clone(),
        std::sync::Arc::new(ds.train.clone()),
        std::sync::Arc::new(ds.relevant.clone()),
    )
    .expect("plan compiles");
    let ingest_handle = ingest_model.prepare().expect("prepare ingest handle");
    const INGEST_BATCHES: usize = 8;
    const INGEST_BATCH_ROWS: usize = 512;
    let batch_indices: Vec<usize> = (0..INGEST_BATCH_ROWS)
        .map(|i| (i * 7) % ds.relevant.num_rows())
        .collect();
    let ingest_batch = ds.relevant.take(&batch_indices);
    let ingest_stop = std::sync::atomic::AtomicBool::new(false);
    let (append_wall_s, mut staleness_samples_us) = std::thread::scope(|scope| {
        for c in 0..TIER_CLIENTS {
            let handle = &ingest_handle;
            let stop = &ingest_stop;
            let serve_keys = &serve_keys;
            scope.spawn(move || {
                let mut out = Vec::new();
                let mut i = c;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let key = &serve_keys[i % serve_keys.len()];
                    handle.lookup(key, &mut out).expect("closed-loop lookup");
                    std::hint::black_box(&out);
                    i += TIER_CLIENTS;
                }
            });
        }
        let mut append_wall = 0.0f64;
        let mut staleness = Vec::with_capacity(INGEST_BATCHES);
        for _ in 0..INGEST_BATCHES {
            let start = Instant::now();
            let info = ingest_model
                .append_relevant(&ingest_batch)
                .expect("append batch");
            append_wall += start.elapsed().as_secs_f64();
            let published = Instant::now();
            // The handle refreshes lazily off the lookup threads' requests;
            // wait until one of them observes the new epoch.
            while ingest_handle.epoch() < info.epoch {
                std::thread::yield_now();
            }
            staleness.push(published.elapsed().as_nanos() as f64 / 1e3);
        }
        ingest_stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (append_wall, staleness)
    });
    staleness_samples_us.sort_by(|a, b| a.total_cmp(b));
    let ingest_rows_per_sec = (INGEST_BATCHES * INGEST_BATCH_ROWS) as f64 / append_wall_s;
    let staleness_us = percentile(&staleness_samples_us, 0.50);
    assert_eq!(
        ingest_model.epoch(),
        INGEST_BATCHES as u64,
        "every append must have published an epoch"
    );

    // ---- Sharded serving (key-partitioned engines behind one router) ------
    // A 4-way `ShardRouter` over the full-key trivial pool (every query
    // groups by every key column, so the shard keys are the whole key).
    // `shard_lookups_per_sec` measures what the routing hash + owning-shard
    // probe add to the unsharded warm path; then a closed-loop tier drives
    // the same sharded model with every 8th request under a tight deadline.
    // `cancelled_rate` counts only the preemptions a `CancelToken` fired
    // *mid-lookup* (as opposed to deadlines observed at a batch boundary,
    // which degrade without cancelling) — 0.0 is a legitimate reading when
    // warm lookups beat the deadline, but the field must exist and be finite
    // so the trajectory is recorded once lookups get expensive enough to
    // preempt.
    const SHARD_COUNT: usize = 4;
    let shard_planned: Vec<PlannedQuery> = dfs
        .iter()
        .take(12)
        .map(|q| PlannedQuery {
            query: q.clone(),
            loss: 0.0,
        })
        .collect();
    let n_shard_queries = shard_planned.len();
    let shard_plan = AugPlan::new(ds.relevant.name(), ds.key_columns.clone(), shard_planned);
    let shard_router = ShardRouter::build_for_plan(
        std::sync::Arc::new(ds.train.clone()),
        &ds.relevant,
        &shard_plan,
        SHARD_COUNT,
    )
    .expect("shard router builds");
    let shard_handle = std::sync::Arc::new(
        ShardedServingHandle::prepare(&shard_router, &shard_plan).expect("prepare sharded handle"),
    );
    let mut shard_out: Vec<Option<f64>> = Vec::with_capacity(shard_handle.num_features());
    let mut shard_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for key in &serve_keys {
            shard_handle
                .lookup(key, &mut shard_out)
                .expect("sharded lookup");
            std::hint::black_box(&shard_out);
        }
        shard_best = shard_best.min(start.elapsed().as_secs_f64());
    }
    // Outside the timed region: routed lookups must actually hit features.
    let shard_hits: usize = serve_keys
        .iter()
        .map(|key| {
            shard_handle
                .lookup(key, &mut shard_out)
                .expect("sharded lookup");
            shard_out.iter().filter(|v| v.is_some()).count()
        })
        .sum();
    assert!(
        shard_hits > 0,
        "warm sharded lookups must hit some features"
    );
    let shard_lookups_per_sec = serve_keys.len() as f64 / shard_best;

    let shard_tier = feataug::ServingTier::new(
        std::sync::Arc::clone(&shard_handle),
        feataug::TierConfig::default(),
    );
    const SHARD_DEADLINE_EVERY: usize = 8;
    const SHARD_TIER_REQUESTS_PER_CLIENT: usize = 1_000;
    std::thread::scope(|scope| {
        for c in 0..TIER_CLIENTS {
            let tier = &shard_tier;
            let serve_keys = &serve_keys;
            scope.spawn(move || {
                for i in 0..SHARD_TIER_REQUESTS_PER_CLIENT {
                    let key = &serve_keys[(c + i * TIER_CLIENTS) % serve_keys.len()];
                    let result = if i % SHARD_DEADLINE_EVERY == 0 {
                        tier.lookup_deadline(key, std::time::Duration::from_micros(50))
                    } else {
                        tier.lookup(key)
                    };
                    match result {
                        Ok(row) => std::hint::black_box(&row),
                        Err(feataug::TierError::Shed { .. }) => continue,
                        Err(e) => panic!("sharded tier load generator hit {e}"),
                    };
                }
            });
        }
    });
    let shard_tier_stats = shard_tier.stats();
    assert_eq!(
        shard_tier_stats.submitted,
        TIER_CLIENTS * SHARD_TIER_REQUESTS_PER_CLIENT,
        "the sharded load generator must account for every request"
    );
    assert!(
        shard_tier_stats.cancelled <= shard_tier_stats.degraded,
        "mid-lookup preemptions are a subset of deadline degradations"
    );
    let cancelled_rate =
        shard_tier_stats.cancelled as f64 / shard_tier_stats.answered.max(1) as f64;

    // ---- Schema path search (the multi-hop augmentation front end) --------
    // The generated Instacart multi-hop schema plants its signal two hops
    // away from the training table. Enumeration counts every candidate path
    // to the hop cap; the proxy gate promotes only the budgeted top slice to
    // a full TPE search — the FeatNavigator/ARDA-style accounting the
    // `paths_promoted < path_search_candidates` assertion pins down.
    let schema_gen = GenConfig {
        n_entities: 400,
        fanout: 8,
        n_noise_cols: 1,
        seed: 5,
    };
    let schema_ds = instacart::generate_schema(&schema_gen);
    let mut graph = SchemaGraph::new();
    graph
        .register(schema_ds.train.clone())
        .expect("register schema train");
    for table in &schema_ds.tables {
        graph
            .register(table.clone())
            .expect("register schema table");
    }
    for edge in &schema_ds.edges {
        let left: Vec<&str> = edge.left_keys.iter().map(|s| s.as_str()).collect();
        let right: Vec<&str> = edge.right_keys.iter().map(|s| s.as_str()).collect();
        graph
            .declare_edge(&edge.left, &edge.right, &left, &right)
            .expect("declare schema edge");
    }
    const SCHEMA_MAX_HOPS: usize = 2;
    const SCHEMA_PATH_BUDGET: usize = 1;
    let path_search_candidates = enumerate_paths(&graph, schema_ds.train.name(), SCHEMA_MAX_HOPS)
        .expect("enumerate join paths")
        .len();
    let mut schema_cfg = FeatAugConfig::fast(ModelKind::Linear).with_seed(5);
    schema_cfg.n_templates = 2;
    schema_cfg.queries_per_template = 2;
    schema_cfg.template_id.n_templates = 2;
    schema_cfg.template_id.pool_samples = 6;
    schema_cfg.sqlgen.warmup_iters = 10;
    schema_cfg.sqlgen.warmup_top_k = 3;
    schema_cfg.sqlgen.search_iters = 4;
    let schema_task = SchemaTask::new(
        graph.clone(),
        schema_ds.train.name(),
        &schema_ds.label_column,
        Task::BinaryClassification,
    )
    .with_max_hops(SCHEMA_MAX_HOPS)
    .with_path_budget(SCHEMA_PATH_BUDGET)
    .with_agg_columns(vec!["price".into(), "cart_position".into()])
    .with_predicate_attrs(vec!["department".into(), "order_hour".into()]);
    let schema_fitted = fit_schema(&schema_cfg, &schema_task).expect("fit_schema");
    let paths_promoted = schema_fitted.stats().promoted;
    assert!(
        paths_promoted < path_search_candidates,
        "the proxy budget must gate full fits ({paths_promoted} of {path_search_candidates})"
    );

    // A hand-built 2-hop plan through the composed gather-map view, driven
    // at the same 10× table scale as the flat transform benchmark.
    let hop = |table: &str, key: &str| PlanHop {
        table: table.to_string(),
        left_keys: vec![key.to_string()],
        right_keys: vec![key.to_string()],
    };
    let mut hop2_planned: Vec<PlannedQuery> = Vec::new();
    for &agg in AggFunc::basic() {
        for col in ["price", "cart_position"] {
            hop2_planned.push(PlannedQuery {
                query: PredicateQuery {
                    agg,
                    agg_column: col.to_string(),
                    predicate: Predicate::True,
                    group_keys: schema_ds.key_columns.clone(),
                },
                loss: 0.0,
            });
        }
    }
    let n_hop2 = hop2_planned.len();
    let hop2_plan =
        AugPlan::new("orders", schema_ds.key_columns.clone(), hop2_planned).with_hops(vec![
            hop("order_items", "order_id"),
            hop("products", "product_id"),
        ]);
    let hop2_model = graph
        .compile(schema_ds.train.name(), hop2_plan)
        .expect("2-hop plan compiles");
    let schema_train_rows = schema_ds.train.num_rows();
    let hop2_indices: Vec<usize> = (0..schema_train_rows * 10)
        .map(|i| i % schema_train_rows)
        .collect();
    let hop2_big = schema_ds.train.take(&hop2_indices);
    let mut hop2_best = f64::INFINITY;
    let mut hop2_cols = 0usize;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let out = hop2_model.transform(&hop2_big).expect("2-hop transform");
        hop2_best = hop2_best.min(start.elapsed().as_secs_f64());
        hop2_cols = out.num_columns();
    }
    let hop2_transform_rows_per_sec = hop2_big.num_rows() as f64 / hop2_best;

    let results = [
        time_pool("basic_aggs", &basic, &ds.train, &ds.relevant, workers),
        time_pool("all_aggs", &all, &ds.train, &ds.relevant, workers),
        time_pool(
            "order_stats",
            &order_stats,
            &ds.train,
            &ds.relevant,
            workers,
        ),
        time_pool("moments", &moments, &ds.train, &ds.relevant, workers),
        time_pool("dfs_trivial", &dfs, &ds.train, &ds.relevant, workers),
        time_pool(
            "order_trivial",
            &order_trivial,
            &ds.train,
            &ds.relevant,
            workers,
        ),
    ];

    let pools_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{ \"pool\": \"{}\", \"naive_us_per_query\": {:.3}, \"engine_us_per_query\": {:.3}, \"batch_us_per_query\": {:.3}, \"speedup\": {:.2}, \"batch_speedup\": {:.2}, \"batch_vs_engine\": {:.2} }}",
                r.name,
                r.naive_us,
                r.engine_us,
                r.batch_us,
                r.speedup(),
                r.batch_speedup(),
                r.batch_vs_engine()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"exec_tmall_micro\",\n  \"dataset\": {{ \"name\": \"tmall\", \"n_entities\": {}, \"fanout\": {}, \"train_rows\": {}, \"relevant_rows\": {} }},\n  \"n_queries\": {},\n  \"rounds\": {},\n  \"workers\": {},\n  \"headline_speedup\": {:.2},\n  \"headline_batch_speedup\": {:.2},\n  \"order_stat_speedup\": {:.2},\n  \"moment_speedup\": {:.2},\n  \"transform_rows_per_sec\": {:.0},\n  \"parallel_transform_speedup\": {:.2},\n  \"transform_workers\": {},\n  \"serve_lookups_per_sec\": {:.0},\n  \"p50_lookup_us\": {:.1},\n  \"p99_lookup_us\": {:.1},\n  \"shed_rate\": {:.4},\n  \"ingest_rows_per_sec\": {:.0},\n  \"staleness_us\": {:.1},\n  \"path_search_candidates\": {},\n  \"paths_promoted\": {},\n  \"hop2_transform_rows_per_sec\": {:.0},\n  \"shard_lookups_per_sec\": {:.0},\n  \"shard_count\": {},\n  \"cancelled_rate\": {:.4},\n  \"tier\": {{ \"clients\": {}, \"requests\": {}, \"workers\": {}, \"answered\": {}, \"shed\": {} }},\n  \"shard_tier\": {{ \"requests\": {}, \"deadline_every\": {}, \"queries\": {}, \"answered\": {}, \"degraded\": {}, \"cancelled\": {} }},\n  \"ingest\": {{ \"batches\": {}, \"batch_rows\": {}, \"epochs\": {} }},\n  \"transform\": {{ \"rows\": {}, \"planned_queries\": {}, \"columns_out\": {}, \"best_s\": {:.4} }},\n  \"schema\": {{ \"dataset\": \"{}\", \"max_hops\": {}, \"path_budget\": {}, \"candidates\": {}, \"promoted\": {}, \"hop2_rows\": {}, \"hop2_queries\": {}, \"hop2_columns_out\": {}, \"hop2_best_s\": {:.4} }},\n  \"pools\": [\n{}\n  ]\n}}\n",
        gen_cfg.n_entities,
        gen_cfg.fanout,
        ds.train.num_rows(),
        ds.relevant.num_rows(),
        N_QUERIES,
        ROUNDS,
        workers,
        results[0].speedup(),
        results[0].batch_speedup(),
        results[2].speedup(),
        results[3].speedup(),
        transform_rows_per_sec,
        parallel_transform_speedup,
        transform_workers,
        serve_lookups_per_sec,
        p50_lookup_us,
        p99_lookup_us,
        shed_rate,
        ingest_rows_per_sec,
        staleness_us,
        path_search_candidates,
        paths_promoted,
        hop2_transform_rows_per_sec,
        shard_lookups_per_sec,
        SHARD_COUNT,
        cancelled_rate,
        TIER_CLIENTS,
        TIER_CLIENTS * TIER_REQUESTS_PER_CLIENT,
        feataug::TierConfig::default().workers,
        tier_stats.answered,
        tier_stats.shed,
        TIER_CLIENTS * SHARD_TIER_REQUESTS_PER_CLIENT,
        SHARD_DEADLINE_EVERY,
        n_shard_queries,
        shard_tier_stats.answered,
        shard_tier_stats.degraded,
        shard_tier_stats.cancelled,
        INGEST_BATCHES,
        INGEST_BATCH_ROWS,
        ingest_model.epoch(),
        big.num_rows(),
        n_planned,
        transform_cols,
        transform_best,
        schema_ds.name,
        SCHEMA_MAX_HOPS,
        SCHEMA_PATH_BUDGET,
        path_search_candidates,
        paths_promoted,
        hop2_big.num_rows(),
        n_hop2,
        hop2_cols,
        hop2_best,
        pools_json.join(",\n"),
    );
    std::fs::write("BENCH_exec.json", &json).expect("writing BENCH_exec.json");
    print!("{json}");
    eprintln!(
        "wrote BENCH_exec.json (workers {workers}; naive->engine basic {:.2}x, all {:.2}x, order-stat {:.2}x, moment {:.2}x, dfs {:.2}x, order-trivial {:.2}x; naive->batch basic {:.2}x; transform {:.0} rows/s over {n_planned} planned queries, parallel transform {:.2}x at {transform_workers} workers; prepared serving {:.0} lookups/s; tier p50 {:.1}us p99 {:.1}us shed_rate {:.4}; sharded serving {:.0} lookups/s over {SHARD_COUNT} shards, cancelled_rate {:.4}; ingest {:.0} rows/s staleness {:.1}us; path search {path_search_candidates} candidates -> {paths_promoted} promoted, 2-hop transform {:.0} rows/s)",
        results[0].speedup(),
        results[1].speedup(),
        results[2].speedup(),
        results[3].speedup(),
        results[4].speedup(),
        results[5].speedup(),
        results[0].batch_speedup(),
        transform_rows_per_sec,
        parallel_transform_speedup,
        serve_lookups_per_sec,
        p50_lookup_us,
        p99_lookup_us,
        shed_rate,
        shard_lookups_per_sec,
        cancelled_rate,
        ingest_rows_per_sec,
        staleness_us,
        hop2_transform_rows_per_sec,
    );
}
