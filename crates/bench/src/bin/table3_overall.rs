//! Table III — overall performance of FeatAug against the baselines on the four one-to-many
//! datasets, for each downstream model (LR, XGB, RF, DeepFM).
//!
//! Run: `cargo run --release -p feataug-bench --bin table3_overall`
//!
//! Environment knobs: `FEATAUG_SCALE`, `FEATAUG_FEATURES`, `FEATAUG_MODELS`, `FEATAUG_DATASETS`.

use feataug_bench::datasets::build_task;
use feataug_bench::methods::{run_method, Method};
use feataug_bench::report::{format_metric, metric_header, print_header, print_row, print_title};
use feataug_bench::{base_seed, datasets_from_env, feature_budget, models_from_env};
use feataug_ml::{Metric, ModelKind};

fn main() {
    let datasets = datasets_from_env(feataug_datagen::one_to_many_names());
    let models = models_from_env(ModelKind::all());
    let budget = feature_budget();
    let seed = base_seed();

    print_title("Table III: overall performance on one-to-many datasets");
    println!(
        "(feature budget = {budget} per method; paper used 40. Metric per dataset follows the paper.)\n"
    );

    for model in &models {
        println!("\n**Model: {model}**\n");
        let mut header: Vec<String> = vec!["Method".to_string()];
        let tasks: Vec<_> = datasets
            .iter()
            .map(|name| (name.clone(), build_task(name)))
            .collect();
        for (name, ds) in &tasks {
            let metric = Metric::for_task(ds.task.task);
            header.push(format!("{name} ({})", metric_header(metric)));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_header(&header_refs);

        for method in Method::table3_methods() {
            let mut cells = vec![method.name()];
            for (_, ds) in &tasks {
                if method.classification_only() && !ds.task.task.is_classification() {
                    cells.push("-".to_string());
                    continue;
                }
                let outcome = run_method(&ds.task, method, *model, budget, seed);
                cells.push(format_metric(&outcome.result));
            }
            print_row(&cells);
        }
    }
}
