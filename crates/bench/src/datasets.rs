//! Building the evaluation datasets at a configurable scale.

use feataug::AugTask;
use feataug_datagen::{generate_by_name, GenConfig, SyntheticDataset, TaskKind};
use feataug_ml::Task;

/// A dataset prepared for experiments: the generated tables plus the FeatAug task view.
#[derive(Debug, Clone)]
pub struct ExperimentDataset {
    /// The generated synthetic dataset (tables + metadata).
    pub synthetic: SyntheticDataset,
    /// The FeatAug problem instance built from it.
    pub task: AugTask,
}

/// Convert a datagen task kind into the ML crate's task type.
pub fn to_ml_task(kind: TaskKind) -> Task {
    match kind {
        TaskKind::Binary => Task::BinaryClassification,
        TaskKind::MultiClass(n) => Task::MultiClassification { n_classes: n },
        TaskKind::Regression => Task::Regression,
    }
}

/// Build an [`AugTask`] from a generated dataset.
pub fn to_aug_task(ds: &SyntheticDataset) -> AugTask {
    AugTask::new(
        ds.train.clone(),
        ds.relevant.clone(),
        ds.key_columns.clone(),
        ds.label_column.clone(),
        to_ml_task(ds.task),
    )
    .with_agg_columns(ds.agg_columns.clone())
    .with_predicate_attrs(ds.predicate_attrs.clone())
}

/// The generation configuration selected by `FEATAUG_SCALE` (tiny / small / full).
///
/// "full" is still far smaller than the paper's multi-million-row Kaggle datasets — the
/// substitution is documented in DESIGN.md; the scaling *sweeps* (Figures 7–9) vary size
/// explicitly instead.
pub fn dataset_scale() -> GenConfig {
    let scale = std::env::var("FEATAUG_SCALE").unwrap_or_else(|_| "small".to_string());
    match scale.as_str() {
        "tiny" => GenConfig {
            n_entities: 150,
            fanout: 6,
            n_noise_cols: 1,
            seed: crate::base_seed(),
        },
        "full" => GenConfig {
            n_entities: 3000,
            fanout: 25,
            n_noise_cols: 3,
            seed: crate::base_seed(),
        },
        _ => GenConfig {
            n_entities: 500,
            fanout: 10,
            n_noise_cols: 2,
            seed: crate::base_seed(),
        },
    }
}

/// Build one of the six named datasets at the configured scale.
pub fn build_task(name: &str) -> ExperimentDataset {
    build_task_with(name, &dataset_scale())
}

/// Build one of the six named datasets with an explicit configuration (used by the scaling
/// figures).
pub fn build_task_with(name: &str, cfg: &GenConfig) -> ExperimentDataset {
    let synthetic = generate_by_name(name, cfg).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let task = to_aug_task(&synthetic);
    ExperimentDataset { synthetic, task }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_paper_datasets() {
        for name in feataug_datagen::one_to_many_names()
            .iter()
            .chain(feataug_datagen::one_to_one_names())
        {
            let ds = build_task_with(name, &GenConfig::tiny());
            assert!(ds.task.train.num_rows() > 0);
            assert_eq!(ds.synthetic.name, *name);
        }
    }

    #[test]
    fn scale_env_fallback_is_small() {
        let cfg = dataset_scale();
        assert!(cfg.n_entities >= 150);
    }
}
