//! # feataug-bench
//!
//! The experiment harness that regenerates every table and figure of the FeatAug paper's
//! evaluation section. Each `src/bin/*.rs` binary corresponds to one table or figure (see
//! `DESIGN.md` for the full index); this library holds the shared machinery:
//!
//! * [`datasets`] — building the paper's six evaluation datasets at a configurable scale,
//! * [`methods`] — running FeatAug, its ablations and every baseline under a common protocol,
//! * [`report`] — printing paper-style result rows.
//!
//! Scale knobs are read from environment variables so the same binaries serve both a quick
//! smoke run and a longer, closer-to-the-paper run:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `FEATAUG_SCALE` | `tiny` / `small` / `full` dataset scale | `small` |
//! | `FEATAUG_SEED`  | base RNG seed | `42` |
//! | `FEATAUG_FEATURES` | feature budget per method | `12` |

pub mod datasets;
pub mod methods;
pub mod report;

pub use datasets::{build_task, dataset_scale, ExperimentDataset};
pub use methods::{run_method, FeatAugVariant, Method};
pub use report::{format_metric, print_header, print_row};

/// The feature budget each augmentation method receives (paper: 40; scaled down by default so
/// the harness runs on a laptop — override with `FEATAUG_FEATURES`).
pub fn feature_budget() -> usize {
    std::env::var("FEATAUG_FEATURES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// Base RNG seed for all experiments (`FEATAUG_SEED`, default 42).
pub fn base_seed() -> u64 {
    std::env::var("FEATAUG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The downstream models to evaluate, read from `FEATAUG_MODELS` (comma-separated paper names,
/// e.g. `LR,XGB`), falling back to `default`.
pub fn models_from_env(default: &[feataug_ml::ModelKind]) -> Vec<feataug_ml::ModelKind> {
    match std::env::var("FEATAUG_MODELS") {
        Ok(list) => {
            let parsed: Vec<_> = list
                .split(',')
                .filter_map(|s| feataug_ml::ModelKind::parse(s.trim()))
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// The datasets to evaluate, read from `FEATAUG_DATASETS` (comma-separated names), falling back
/// to `default`.
pub fn datasets_from_env(default: &[&str]) -> Vec<String> {
    match std::env::var("FEATAUG_DATASETS") {
        Ok(list) => {
            let parsed: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_lowercase())
                .filter(|s| !s.is_empty())
                .collect();
            if parsed.is_empty() {
                default.iter().map(|s| s.to_string()).collect()
            } else {
                parsed
            }
        }
        Err(_) => default.iter().map(|s| s.to_string()).collect(),
    }
}
