//! Printing paper-style result tables.

use feataug_ml::{EvalResult, Metric};

/// Format a metric value the way the paper's tables do (four decimals; an arrow in the header
/// indicates the direction).
pub fn format_metric(result: &EvalResult) -> String {
    format!("{:.4}", result.value)
}

/// The header suffix for a metric ("AUC ↑", "RMSE ↓", ...).
pub fn metric_header(metric: Metric) -> String {
    if metric.higher_is_better() {
        format!("{} ↑", metric.name())
    } else {
        format!("{} ↓", metric.name())
    }
}

/// Print a markdown-style table header.
pub fn print_header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Print one markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a section title in the style the experiment binaries use.
pub fn print_title(title: &str) {
    println!("\n### {title}\n");
}

/// Format a duration in seconds with two decimals.
pub fn format_secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formatting() {
        let r = EvalResult::from_value(Metric::Auc, 0.61234);
        assert_eq!(format_metric(&r), "0.6123");
        assert_eq!(metric_header(Metric::Auc), "AUC ↑");
        assert_eq!(metric_header(Metric::Rmse), "RMSE ↓");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_secs(std::time::Duration::from_millis(1500)), "1.50s");
    }
}
