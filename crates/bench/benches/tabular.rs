//! Micro-benchmarks for the table substrate: predicate filtering, hash vs. sort group-by
//! aggregation, and the left join that attaches features — the operators every candidate query
//! executes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use feataug_datagen::{tmall, GenConfig};
use feataug_tabular::groupby::{group_by_aggregate, group_by_aggregate_sorted};
use feataug_tabular::join::left_join;
use feataug_tabular::{AggFunc, Predicate};

fn bench_tabular(c: &mut Criterion) {
    let ds = tmall::generate(&GenConfig {
        n_entities: 800,
        fanout: 12,
        n_noise_cols: 1,
        seed: 3,
    });
    let relevant = &ds.relevant;
    let train = &ds.train;
    let keys: Vec<&str> = ds.key_columns.iter().map(|s| s.as_str()).collect();

    let predicate = Predicate::and(vec![
        Predicate::eq("department", "Electronics"),
        Predicate::ge("timestamp", feataug_datagen::tmall::RECENT_CUTOFF),
    ]);

    c.bench_function("tabular/filter_predicate", |b| {
        b.iter(|| black_box(relevant.filter(&predicate).unwrap().num_rows()))
    });

    c.bench_function("tabular/groupby_hash_avg", |b| {
        b.iter(|| {
            black_box(
                group_by_aggregate(relevant, &keys, AggFunc::Avg, "pprice", "f")
                    .unwrap()
                    .num_rows(),
            )
        })
    });

    c.bench_function("tabular/groupby_sort_avg", |b| {
        b.iter(|| {
            black_box(
                group_by_aggregate_sorted(relevant, &keys, AggFunc::Avg, "pprice", "f")
                    .unwrap()
                    .num_rows(),
            )
        })
    });

    c.bench_function("tabular/groupby_hash_entropy", |b| {
        b.iter(|| {
            black_box(
                group_by_aggregate(relevant, &keys, AggFunc::Entropy, "pprice", "f")
                    .unwrap()
                    .num_rows(),
            )
        })
    });

    let features = group_by_aggregate(relevant, &keys, AggFunc::Avg, "pprice", "f").unwrap();
    c.bench_function("tabular/left_join_features", |b| {
        b.iter(|| {
            black_box(
                left_join(train, &features, &keys, &keys)
                    .unwrap()
                    .num_rows(),
            )
        })
    });
}

criterion_group!(benches, bench_tabular);
criterion_main!(benches);
