//! Benchmarks for the SQL Query Generation component: the cost of materialising one candidate
//! query, and of a full warm-up + generation run over a template's pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use feataug::evaluation::FeatureEvaluator;
use feataug::generation::{QueryGenerator, SqlGenConfig};
use feataug::{QueryCodec, QueryTemplate};
use feataug_bench::datasets::build_task_with;
use feataug_datagen::GenConfig;
use feataug_ml::ModelKind;
use feataug_tabular::AggFunc;

fn bench_generation(c: &mut Criterion) {
    let ds = build_task_with(
        "tmall",
        &GenConfig {
            n_entities: 400,
            fanout: 10,
            n_noise_cols: 1,
            seed: 3,
        },
    );
    let task = &ds.task;
    let template = QueryTemplate::new(
        vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Max],
        task.resolved_agg_columns(),
        vec!["department".into(), "timestamp".into()],
        task.key_columns.clone(),
    );
    let codec = QueryCodec::build(&template, &task.relevant).unwrap();

    c.bench_function("generation/materialize_one_query", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let config = codec.space().sample(&mut rng);
            let query = codec.decode(&config);
            black_box(
                query
                    .augment(&task.train, &task.relevant)
                    .unwrap()
                    .0
                    .num_rows(),
            )
        })
    });

    let evaluator = FeatureEvaluator::new(task, ModelKind::Linear, 3);

    c.bench_function("generation/warmup_plus_search_fast", |b| {
        b.iter(|| {
            let mut cfg = SqlGenConfig::fast();
            cfg.warmup_iters = 10;
            cfg.warmup_top_k = 3;
            cfg.search_iters = 4;
            let generator = QueryGenerator::new(task, &evaluator, cfg);
            black_box(generator.generate(&template, 2).0.len())
        })
    });

    c.bench_function("generation/no_warmup_search_fast", |b| {
        b.iter(|| {
            let mut cfg = SqlGenConfig::fast();
            cfg.enable_warmup = false;
            cfg.warmup_top_k = 3;
            cfg.search_iters = 4;
            let generator = QueryGenerator::new(task, &evaluator, cfg);
            black_box(generator.generate(&template, 2).0.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation
}
criterion_main!(benches);
