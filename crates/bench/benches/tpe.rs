//! Micro-benchmarks for the HPO substrate: suggestion cost of TPE vs. random search, with and
//! without observations, on a FeatAug-shaped mixed search space.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use feataug_hpo::{Optimizer, Param, ParamValue, RandomSearch, SearchSpace, Tpe, TpeConfig};

/// A search space shaped like a typical FeatAug query pool: one aggregation-function dimension,
/// one aggregation-attribute dimension, one categorical predicate, two range bounds, two
/// group-by flags.
fn query_like_space() -> SearchSpace {
    SearchSpace::new(vec![
        Param::categorical("agg_func", 15),
        Param::categorical("agg_column", 6),
        Param::optional_categorical("department__eq", 5),
        Param::optional_float("timestamp__low", 0.0, 1000.0),
        Param::optional_float("timestamp__high", 0.0, 1000.0),
        Param::categorical("key_a", 2),
        Param::categorical("key_b", 2),
    ])
}

fn synthetic_loss(config: &[ParamValue]) -> f64 {
    let agg = config[0].as_cat().unwrap_or(0) as f64;
    let low = config[3].as_f64().unwrap_or(500.0);
    (agg - 4.0).abs() / 15.0 + (low - 700.0).abs() / 1000.0
}

fn bench_tpe(c: &mut Criterion) {
    let space = query_like_space();

    c.bench_function("hpo/random_suggest", |b| {
        let mut rs = RandomSearch::new(space.clone());
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(rs.suggest(&mut rng)))
    });

    c.bench_function("hpo/tpe_suggest_cold", |b| {
        let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        // Below n_startup the suggestion is a uniform sample.
        b.iter(|| black_box(tpe.suggest(&mut rng)))
    });

    c.bench_function("hpo/tpe_suggest_with_50_observations", |b| {
        let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let cfg = space.sample(&mut rng);
            let loss = synthetic_loss(&cfg);
            tpe.observe(cfg, loss);
        }
        b.iter(|| black_box(tpe.suggest(&mut rng)))
    });

    c.bench_function("hpo/tpe_full_loop_40_iters", |b| {
        b.iter(|| {
            let mut tpe = Tpe::new(space.clone(), TpeConfig::default());
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..40 {
                let cfg = tpe.suggest(&mut rng);
                let loss = synthetic_loss(&cfg);
                tpe.observe(cfg, loss);
            }
            black_box(tpe.best().map(|(_, l)| l))
        })
    });
}

criterion_group!(benches, bench_tpe);
criterion_main!(benches);
