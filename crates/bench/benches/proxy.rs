//! Micro-benchmarks for the low-cost proxies (Table VIII's SC / MI / LR): how much cheaper a
//! proxy evaluation is than training the downstream model, per candidate feature.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use feataug::evaluation::FeatureEvaluator;
use feataug::proxy::LowCostProxy;
use feataug_bench::datasets::build_task_with;
use feataug_datagen::GenConfig;
use feataug_ml::{ModelKind, Task};

fn bench_proxy(c: &mut Criterion) {
    let ds = build_task_with(
        "tmall",
        &GenConfig {
            n_entities: 600,
            fanout: 10,
            n_noise_cols: 1,
            seed: 3,
        },
    );
    let labels = ds.task.labels().expect("generated task has labels");
    let feature: Vec<f64> = labels
        .iter()
        .enumerate()
        .map(|(i, &y)| y * 2.0 + ((i * 17) % 13) as f64 * 0.1)
        .collect();

    for proxy in LowCostProxy::all() {
        c.bench_function(&format!("proxy/{}", proxy.name()), |b| {
            b.iter(|| black_box(proxy.score(&feature, &labels, Task::BinaryClassification)))
        });
    }

    // The real oracle the proxies stand in for: one downstream-model evaluation.
    let evaluator = FeatureEvaluator::new(&ds.task, ModelKind::Linear, 3);
    c.bench_function("proxy/full_model_evaluation_LR", |b| {
        b.iter(|| black_box(evaluator.loss_with_feature("candidate", &feature)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_proxy
}
criterion_main!(benches);
