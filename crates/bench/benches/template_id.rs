//! Benchmarks for the Query Template Identification component: beam search with the low-cost
//! proxy and the promising-template predictor, against the un-optimised variants (the design
//! ablation behind the paper's Figure 5(a)).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use feataug::evaluation::FeatureEvaluator;
use feataug::template_id::{TemplateIdConfig, TemplateIdentifier};
use feataug_bench::datasets::build_task_with;
use feataug_datagen::GenConfig;
use feataug_ml::ModelKind;
use feataug_tabular::AggFunc;

fn bench_template_id(c: &mut Criterion) {
    let ds = build_task_with(
        "student",
        &GenConfig {
            n_entities: 300,
            fanout: 8,
            n_noise_cols: 1,
            seed: 3,
        },
    );
    let task = &ds.task;
    let evaluator = FeatureEvaluator::new(task, ModelKind::Linear, 3);
    let agg_funcs = vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count];

    let run = |use_proxy: bool, use_predictor: bool| {
        let cfg = TemplateIdConfig {
            use_proxy,
            use_predictor,
            pool_samples: 6,
            max_depth: 3,
            beam_width: 2,
            ..TemplateIdConfig::fast()
        };
        let identifier = TemplateIdentifier::new(task, &evaluator, agg_funcs.clone(), cfg);
        identifier.identify().2
    };

    c.bench_function("template_id/beam_no_opts_real_eval", |b| {
        b.iter(|| black_box(run(false, false)))
    });
    c.bench_function("template_id/beam_proxy_only_opt1", |b| {
        b.iter(|| black_box(run(true, false)))
    });
    c.bench_function("template_id/beam_proxy_predictor_opt1_2", |b| {
        b.iter(|| black_box(run(true, true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_template_id
}
criterion_main!(benches);
