//! Engine vs. naive candidate evaluation: the cost of one predicate-query
//! feature on the tmall generator, through the reference
//! execute-then-left-join path and through the compiled [`QueryEngine`].

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use feataug::exec::QueryEngine;
use feataug::{QueryCodec, QueryTemplate};
use feataug_datagen::{tmall, GenConfig};
use feataug_tabular::{AggFunc, Predicate};

fn bench_exec(c: &mut Criterion) {
    let ds = tmall::generate(&GenConfig {
        n_entities: 800,
        fanout: 12,
        n_noise_cols: 1,
        seed: 3,
    });
    let template = QueryTemplate::new(
        vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Max],
        ds.agg_columns.clone(),
        ds.predicate_attrs.clone(),
        ds.key_columns.clone(),
    );
    let query = feataug::PredicateQuery {
        agg: AggFunc::Avg,
        agg_column: ds.agg_columns[0].clone(),
        predicate: Predicate::and(vec![
            Predicate::eq("department", "Electronics"),
            Predicate::ge("timestamp", tmall::RECENT_CUTOFF),
        ]),
        group_keys: ds.key_columns.clone(),
    };

    c.bench_function("exec/naive_augment_one_query", |b| {
        b.iter(|| black_box(query.augment(&ds.train, &ds.relevant).unwrap().0.num_rows()))
    });

    let engine = QueryEngine::new(&ds.train, &ds.relevant);
    engine.feature(&query).unwrap(); // compile outside the timed region
    c.bench_function("exec/engine_one_query_warm", |b| {
        b.iter(|| black_box(engine.feature(&query).unwrap().1.len()))
    });

    c.bench_function("exec/engine_compile_plus_one_query", |b| {
        b.iter(|| {
            let cold = QueryEngine::new(&ds.train, &ds.relevant);
            black_box(cold.feature(&query).unwrap().1.len())
        })
    });

    // A trivial-predicate (Featuretools-shaped) candidate: the reference path
    // clones and re-groups the full table; the engine gathers from cache.
    let trivial = feataug::PredicateQuery {
        agg: AggFunc::Sum,
        agg_column: ds.agg_columns[0].clone(),
        predicate: Predicate::True,
        group_keys: ds.key_columns.clone(),
    };
    c.bench_function("exec/naive_trivial_predicate", |b| {
        b.iter(|| {
            black_box(
                trivial
                    .augment(&ds.train, &ds.relevant)
                    .unwrap()
                    .0
                    .num_rows(),
            )
        })
    });
    c.bench_function("exec/engine_trivial_predicate_warm", |b| {
        b.iter(|| black_box(engine.feature(&trivial).unwrap().1.len()))
    });

    // Mixed pool, as the TPE loop sees it: random queries from the codec.
    let codec = QueryCodec::build(&template, &ds.relevant).unwrap();
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(11);
    let pool: Vec<_> = (0..64)
        .map(|_| codec.decode(&codec.space().sample(&mut rng)))
        .collect();
    let mut next = 0usize;
    c.bench_function("exec/engine_mixed_pool_warm", |b| {
        b.iter(|| {
            let q = &pool[next % pool.len()];
            next += 1;
            black_box(engine.feature(q).unwrap().1.len())
        })
    });

    // The whole pool at once through the scoped worker pool, fresh engine per
    // iteration (compile + LRU-cold, like one beam-search node pays it). A
    // second variant pins one worker to expose the fan-out overhead itself.
    let workers = feataug::default_workers();
    c.bench_function("exec/engine_batch_pool_default_workers", |b| {
        b.iter(|| {
            let cold = QueryEngine::new(&ds.train, &ds.relevant);
            black_box(cold.feature_batch_threads(&pool, workers).len())
        })
    });
    c.bench_function("exec/engine_batch_pool_one_worker", |b| {
        b.iter(|| {
            let cold = QueryEngine::new(&ds.train, &ds.relevant);
            black_box(cold.feature_batch_threads(&pool, 1).len())
        })
    });
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
