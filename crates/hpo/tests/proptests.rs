//! Property-based tests for the HPO substrate: suggestions stay inside the search space, the
//! best-tracking is consistent, and the TPE split never degenerates.

use proptest::prelude::*;
use rand::SeedableRng;

use feataug_hpo::{Optimizer, Param, RandomSearch, SearchSpace, Tpe, TpeConfig};

/// Build a mixed search space from small cardinalities supplied by proptest.
fn space(n_cat: usize, with_optional: bool, int_hi: i64) -> SearchSpace {
    let mut params = vec![
        Param::categorical("cat", n_cat.max(1)),
        Param::float("x", -1.0, 1.0),
        Param::int("k", 0, int_hi.max(0)),
    ];
    if with_optional {
        params.push(Param::optional_categorical("opt_cat", n_cat.max(1)));
        params.push(Param::optional_float("opt_x", 0.0, 10.0));
    }
    SearchSpace::new(params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tpe_suggestions_always_valid(
        seed in 0u64..10_000,
        n_cat in 1usize..8,
        with_optional in proptest::bool::ANY,
        int_hi in 0i64..50,
        iters in 5usize..40,
    ) {
        let s = space(n_cat, with_optional, int_hi);
        let mut tpe = Tpe::new(s.clone(), TpeConfig { n_startup: 5, ..TpeConfig::default() });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in 0..iters {
            let cfg = tpe.suggest(&mut rng);
            prop_assert!(s.contains(&cfg), "iteration {i}: {cfg:?} outside the space");
            let loss = cfg[1].as_f64().unwrap_or(0.0).abs() + (i % 3) as f64 * 0.1;
            tpe.observe(cfg, loss);
        }
        prop_assert_eq!(tpe.n_observations(), iters);
    }

    #[test]
    fn best_is_monotone_nonincreasing(
        seed in 0u64..10_000,
        losses in proptest::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let s = space(3, false, 5);
        let mut rs = RandomSearch::new(s.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut best_so_far = f64::INFINITY;
        for loss in losses {
            let cfg = rs.suggest(&mut rng);
            rs.observe(cfg, loss);
            let (_, best) = rs.best().unwrap();
            prop_assert!(best <= best_so_far + 1e-12);
            prop_assert!(best <= loss + 1e-12);
            best_so_far = best;
        }
    }

    #[test]
    fn warm_start_counts_as_observations(
        seed in 0u64..10_000,
        n_warm in 1usize..30,
    ) {
        let s = space(4, true, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let warm: Vec<_> = (0..n_warm)
            .map(|i| (s.sample(&mut rng), i as f64))
            .collect();
        let mut tpe = Tpe::new(s.clone(), TpeConfig::default());
        tpe.warm_start(warm);
        prop_assert_eq!(tpe.n_observations(), n_warm);
        // The best warm observation has loss 0.
        prop_assert_eq!(tpe.best().unwrap().1, 0.0);
        // And the next suggestion is still valid.
        let cfg = tpe.suggest(&mut rng);
        prop_assert!(s.contains(&cfg));
    }

    #[test]
    fn uniform_sampling_covers_categorical_domain(
        seed in 0u64..10_000,
        n_cat in 2usize..6,
    ) {
        let s = SearchSpace::new(vec![Param::categorical("c", n_cat)]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut seen = vec![false; n_cat];
        for _ in 0..200 {
            let cfg = s.sample(&mut rng);
            seen[cfg[0].as_cat().unwrap()] = true;
        }
        prop_assert!(seen.into_iter().all(|b| b), "200 samples should hit every category");
    }
}
