//! Search-space definitions: parameters, domains and configurations.

use rand::rngs::StdRng;
use rand::Rng;

/// The domain of one search dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// A categorical choice among `n` alternatives (encoded as indices `0..n`).
    Categorical {
        /// Number of alternatives.
        n: usize,
    },
    /// A bounded continuous value.
    Float {
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
    },
    /// A bounded integer value.
    Int {
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
}

/// One named search dimension. When `optional` is true the dimension may also take the value
/// [`ParamValue::Null`] — FeatAug uses this to express "no predicate on this attribute".
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Dimension name (for reporting).
    pub name: String,
    /// Value domain.
    pub domain: Domain,
    /// Whether [`ParamValue::Null`] is allowed.
    pub optional: bool,
}

impl Param {
    /// Required categorical parameter with `n` choices.
    pub fn categorical(name: impl Into<String>, n: usize) -> Param {
        Param {
            name: name.into(),
            domain: Domain::Categorical { n },
            optional: false,
        }
    }

    /// Optional categorical parameter (may be Null).
    pub fn optional_categorical(name: impl Into<String>, n: usize) -> Param {
        Param {
            name: name.into(),
            domain: Domain::Categorical { n },
            optional: true,
        }
    }

    /// Required float parameter in `[low, high]`.
    pub fn float(name: impl Into<String>, low: f64, high: f64) -> Param {
        Param {
            name: name.into(),
            domain: Domain::Float { low, high },
            optional: false,
        }
    }

    /// Optional float parameter in `[low, high]` (may be Null).
    pub fn optional_float(name: impl Into<String>, low: f64, high: f64) -> Param {
        Param {
            name: name.into(),
            domain: Domain::Float { low, high },
            optional: true,
        }
    }

    /// Required integer parameter in `[low, high]`.
    pub fn int(name: impl Into<String>, low: i64, high: i64) -> Param {
        Param {
            name: name.into(),
            domain: Domain::Int { low, high },
            optional: false,
        }
    }

    /// Optional integer parameter in `[low, high]` (may be Null).
    pub fn optional_int(name: impl Into<String>, low: i64, high: i64) -> Param {
        Param {
            name: name.into(),
            domain: Domain::Int { low, high },
            optional: true,
        }
    }

    /// Sample a value uniformly from the domain (Null with probability 1/(n+1) for optional
    /// categorical dimensions, 0.3 for optional numeric dimensions).
    pub fn sample(&self, rng: &mut StdRng) -> ParamValue {
        if self.optional {
            let p_null = match self.domain {
                Domain::Categorical { n } => 1.0 / (n as f64 + 1.0),
                _ => 0.3,
            };
            if rng.gen::<f64>() < p_null {
                return ParamValue::Null;
            }
        }
        match self.domain {
            Domain::Categorical { n } => ParamValue::Cat(rng.gen_range(0..n.max(1))),
            Domain::Float { low, high } => {
                if low >= high {
                    ParamValue::Float(low)
                } else {
                    ParamValue::Float(rng.gen_range(low..=high))
                }
            }
            Domain::Int { low, high } => {
                if low >= high {
                    ParamValue::Int(low)
                } else {
                    ParamValue::Int(rng.gen_range(low..=high))
                }
            }
        }
    }

    /// True when `value` lies inside this parameter's domain.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (value, &self.domain) {
            (ParamValue::Null, _) => self.optional,
            (ParamValue::Cat(c), Domain::Categorical { n }) => c < n,
            (ParamValue::Float(f), Domain::Float { low, high }) => *f >= *low && *f <= *high,
            (ParamValue::Int(i), Domain::Int { low, high }) => *i >= *low && *i <= *high,
            _ => false,
        }
    }
}

/// The value of one dimension in a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Absent value (used for "no predicate on this attribute").
    Null,
    /// Categorical choice index.
    Cat(usize),
    /// Continuous value.
    Float(f64),
    /// Integer value.
    Int(i64),
}

impl ParamValue {
    /// True when this is [`ParamValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, ParamValue::Null)
    }

    /// Numeric view (categorical indices and ints map to f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Null => None,
            ParamValue::Cat(c) => Some(*c as f64),
            ParamValue::Float(f) => Some(*f),
            ParamValue::Int(i) => Some(*i as f64),
        }
    }

    /// Categorical index view.
    pub fn as_cat(&self) -> Option<usize> {
        match self {
            ParamValue::Cat(c) => Some(*c),
            _ => None,
        }
    }
}

/// A full assignment of one value per search dimension.
pub type Config = Vec<ParamValue>;

/// An ordered collection of [`Param`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    params: Vec<Param>,
}

impl SearchSpace {
    /// Build a space from parameters.
    pub fn new(params: Vec<Param>) -> Self {
        SearchSpace { params }
    }

    /// The dimensions of the space.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Sample a configuration uniformly at random.
    pub fn sample(&self, rng: &mut StdRng) -> Config {
        self.params.iter().map(|p| p.sample(rng)).collect()
    }

    /// True when every value of `config` lies in the corresponding dimension's domain.
    pub fn contains(&self, config: &Config) -> bool {
        config.len() == self.params.len()
            && self.params.iter().zip(config).all(|(p, v)| p.contains(v))
    }

    /// A rough size of the discrete search space: the product of categorical cardinalities and
    /// integer range widths (continuous dimensions count as 100 "steps"), saturating at
    /// `f64::MAX`. Used only for reporting (paper Table II's "# of T"-style statistics).
    pub fn approx_cardinality(&self) -> f64 {
        let mut total = 1.0f64;
        for p in &self.params {
            let card = match p.domain {
                Domain::Categorical { n } => n as f64,
                Domain::Int { low, high } => (high - low + 1) as f64,
                Domain::Float { .. } => 100.0,
            };
            let card = if p.optional { card + 1.0 } else { card };
            total *= card;
            if !total.is_finite() {
                return f64::MAX;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            Param::categorical("agg", 5),
            Param::optional_categorical("dept", 3),
            Param::optional_float("ts_low", 0.0, 100.0),
            Param::int("count", 1, 10),
        ])
    }

    #[test]
    fn sample_stays_in_domain() {
        let s = space();
        let mut rng = rng();
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            assert!(s.contains(&c));
        }
    }

    #[test]
    fn optional_dimensions_sometimes_sample_null() {
        let s = space();
        let mut rng = rng();
        let mut saw_null = false;
        let mut saw_value = false;
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            if c[1].is_null() {
                saw_null = true;
            } else {
                saw_value = true;
            }
        }
        assert!(saw_null && saw_value);
    }

    #[test]
    fn required_dimensions_never_null() {
        let s = space();
        let mut rng = rng();
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            assert!(!c[0].is_null());
            assert!(!c[3].is_null());
        }
    }

    #[test]
    fn contains_rejects_out_of_domain_values() {
        let s = space();
        assert!(!s.contains(&vec![
            ParamValue::Cat(99),
            ParamValue::Null,
            ParamValue::Null,
            ParamValue::Int(5)
        ]));
        assert!(!s.contains(&vec![ParamValue::Cat(0)])); // wrong length
        assert!(!s.contains(&vec![
            ParamValue::Null, // not optional
            ParamValue::Null,
            ParamValue::Null,
            ParamValue::Int(5)
        ]));
        assert!(!s.contains(&vec![
            ParamValue::Cat(0),
            ParamValue::Cat(0),
            ParamValue::Float(500.0), // out of range
            ParamValue::Int(5)
        ]));
    }

    #[test]
    fn param_value_views() {
        assert_eq!(ParamValue::Cat(3).as_f64(), Some(3.0));
        assert_eq!(ParamValue::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(ParamValue::Int(-2).as_f64(), Some(-2.0));
        assert_eq!(ParamValue::Null.as_f64(), None);
        assert_eq!(ParamValue::Cat(3).as_cat(), Some(3));
        assert_eq!(ParamValue::Float(1.0).as_cat(), None);
        assert!(ParamValue::Null.is_null());
    }

    #[test]
    fn degenerate_domains_sample_their_only_value() {
        let p = Param::float("x", 5.0, 5.0);
        let mut rng = rng();
        assert_eq!(p.sample(&mut rng), ParamValue::Float(5.0));
        let p = Param::int("y", 3, 3);
        assert_eq!(p.sample(&mut rng), ParamValue::Int(3));
    }

    #[test]
    fn approx_cardinality_multiplies_domains() {
        let s = SearchSpace::new(vec![
            Param::categorical("a", 5),
            Param::optional_categorical("b", 3),
            Param::int("c", 1, 10),
        ]);
        assert_eq!(s.approx_cardinality(), 5.0 * 4.0 * 10.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
