//! # feataug-hpo
//!
//! A small hyperparameter-optimization substrate: search-space definitions, random search and a
//! Tree-structured Parzen Estimator (TPE) with per-dimension kernel-density surrogates and
//! warm-start support.
//!
//! FeatAug (Section V of the paper) maps every candidate predicate-aware SQL query to a vector
//! of "hyperparameters" — the aggregation function, the aggregated attribute, the predicate
//! constants and the group-by key subset — and then searches that space with TPE. The
//! warm-up phase seeds the surrogate with observations collected on a cheap proxy objective
//! (mutual information), which is exactly what [`tpe::Tpe::warm_start`] provides.
//!
//! ```
//! use feataug_hpo::{SearchSpace, Param, Optimizer, Tpe, TpeConfig};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::new(vec![
//!     Param::categorical("agg", 3),
//!     Param::float("threshold", 0.0, 10.0),
//! ]);
//! let mut tpe = Tpe::new(space, TpeConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for _ in 0..20 {
//!     let config = tpe.suggest(&mut rng);
//!     let loss = config[1].as_f64().unwrap_or(5.0); // pretend smaller threshold = better
//!     tpe.observe(config, loss);
//! }
//! assert!(tpe.best().unwrap().1 <= 5.0);
//! ```

pub mod kde;
pub mod random;
pub mod space;
pub mod tpe;

pub use random::RandomSearch;
pub use space::{Config, Domain, Param, ParamValue, SearchSpace};
pub use tpe::{Tpe, TpeConfig, Trial};

use rand::rngs::StdRng;

/// A sequential black-box optimizer over a [`SearchSpace`], minimising a loss.
pub trait Optimizer {
    /// Propose the next configuration to evaluate.
    fn suggest(&mut self, rng: &mut StdRng) -> Config;
    /// Report the observed loss of a configuration.
    fn observe(&mut self, config: Config, loss: f64);
    /// The best (configuration, loss) observed so far.
    fn best(&self) -> Option<(&Config, f64)>;
    /// Number of observations recorded so far.
    fn n_observations(&self) -> usize;
}
