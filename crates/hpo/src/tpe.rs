//! Tree-structured Parzen Estimator (TPE).
//!
//! TPE (Bergstra et al., 2011) models the observations below the γ-quantile of losses ("good")
//! and the rest ("bad") with separate densities `l(x)` and `g(x)`, and picks the candidate that
//! maximises the expected-improvement surrogate `l(x) / g(x)`. Each dimension gets its own
//! density: a Gaussian KDE for continuous/integer dimensions, a smoothed frequency table for
//! categorical dimensions, and a Bernoulli "is-null" model for optional dimensions.
//!
//! [`Tpe::warm_start`] injects externally collected observations (FeatAug's warm-up phase runs
//! TPE against a mutual-information proxy and seeds the real search with the top results).

use rand::rngs::StdRng;

use crate::kde::{CategoricalDensity, GaussianKde};
use crate::space::{Config, Domain, Param, ParamValue, SearchSpace};
use crate::Optimizer;

/// One evaluated trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The evaluated configuration.
    pub config: Config,
    /// Its observed loss (lower is better).
    pub loss: f64,
}

/// TPE hyperparameters.
#[derive(Debug, Clone)]
pub struct TpeConfig {
    /// Fraction of observations treated as "good" (the paper quotes 10–15%).
    pub gamma: f64,
    /// Number of random startup trials before the surrogate is used.
    pub n_startup: usize,
    /// Number of expected-improvement candidates drawn from the good density per suggestion.
    pub n_ei_candidates: usize,
    /// Laplace smoothing for categorical densities.
    pub alpha: f64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        TpeConfig {
            gamma: 0.15,
            n_startup: 10,
            n_ei_candidates: 24,
            alpha: 1.0,
        }
    }
}

/// The TPE optimizer.
#[derive(Debug, Clone)]
pub struct Tpe {
    space: SearchSpace,
    cfg: TpeConfig,
    trials: Vec<Trial>,
}

/// Per-dimension density pair (good / bad) used when scoring candidates.
enum DimDensity {
    Numeric {
        good: GaussianKde,
        bad: GaussianKde,
        good_null_rate: f64,
        bad_null_rate: f64,
    },
    Categorical {
        good: CategoricalDensity,
        bad: CategoricalDensity,
    },
}

impl Tpe {
    /// New TPE optimizer over `space`.
    pub fn new(space: SearchSpace, cfg: TpeConfig) -> Self {
        Tpe {
            space,
            cfg,
            trials: Vec::new(),
        }
    }

    /// The underlying search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// All trials recorded so far.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Seed the surrogate with externally evaluated observations (the warm-up phase).
    /// Startup random exploration is skipped once at least `n_startup` warm observations exist.
    pub fn warm_start(&mut self, observations: impl IntoIterator<Item = (Config, f64)>) {
        for (config, loss) in observations {
            debug_assert!(
                self.space.contains(&config),
                "warm-start config outside the space"
            );
            self.trials.push(Trial { config, loss });
        }
    }

    /// Split trials into (good, bad) by the γ-quantile of losses.
    ///
    /// Requires at least two trials — with fewer, the "bad" side would be
    /// empty and the densities would be fitted on empty slices;
    /// [`Tpe::suggest`] falls back to random sampling before that can happen.
    fn split(&self) -> (Vec<&Trial>, Vec<&Trial>) {
        debug_assert!(
            self.trials.len() >= 2,
            "split() needs >= 2 trials for a non-empty bad side"
        );
        let mut sorted: Vec<&Trial> = self.trials.iter().collect();
        sorted.sort_by(|a, b| a.loss.total_cmp(&b.loss));
        let n_good = ((sorted.len() as f64) * self.cfg.gamma).ceil().max(1.0) as usize;
        let n_good = n_good.min(sorted.len().saturating_sub(1)).max(1);
        let good = sorted[..n_good].to_vec();
        let bad = sorted[n_good..].to_vec();
        (good, bad)
    }

    /// Build the per-dimension good/bad densities.
    fn densities(&self, good: &[&Trial], bad: &[&Trial]) -> Vec<DimDensity> {
        self.space
            .params()
            .iter()
            .enumerate()
            .map(|(d, param)| match &param.domain {
                Domain::Categorical { n } => {
                    // Optional categoricals get an extra "null" pseudo-choice at index n.
                    let domain_n = if param.optional { n + 1 } else { *n };
                    let to_idx = |v: &ParamValue| match v {
                        ParamValue::Cat(c) => *c,
                        ParamValue::Null => *n,
                        other => other.as_f64().unwrap_or(0.0) as usize,
                    };
                    let g: Vec<usize> = good.iter().map(|t| to_idx(&t.config[d])).collect();
                    let b: Vec<usize> = bad.iter().map(|t| to_idx(&t.config[d])).collect();
                    DimDensity::Categorical {
                        good: CategoricalDensity::fit(&g, domain_n, self.cfg.alpha),
                        bad: CategoricalDensity::fit(&b, domain_n, self.cfg.alpha),
                    }
                }
                Domain::Float { low, high } => {
                    let (g_vals, g_null) = numeric_observations(good, d);
                    let (b_vals, b_null) = numeric_observations(bad, d);
                    DimDensity::Numeric {
                        good: GaussianKde::fit(&g_vals, *low, *high),
                        bad: GaussianKde::fit(&b_vals, *low, *high),
                        good_null_rate: g_null,
                        bad_null_rate: b_null,
                    }
                }
                Domain::Int { low, high } => {
                    let (g_vals, g_null) = numeric_observations(good, d);
                    let (b_vals, b_null) = numeric_observations(bad, d);
                    DimDensity::Numeric {
                        good: GaussianKde::fit(&g_vals, *low as f64, *high as f64),
                        bad: GaussianKde::fit(&b_vals, *low as f64, *high as f64),
                        good_null_rate: g_null,
                        bad_null_rate: b_null,
                    }
                }
            })
            .collect()
    }

    /// Sample one candidate from the good densities.
    fn sample_candidate(&self, densities: &[DimDensity], rng: &mut StdRng) -> Config {
        self.space
            .params()
            .iter()
            .zip(densities)
            .map(|(param, density)| sample_dim(param, density, rng))
            .collect()
    }

    /// Score a candidate by the product of per-dimension `P_good / P_bad` ratios (in log space).
    fn ei_score(&self, densities: &[DimDensity], config: &Config) -> f64 {
        let mut log_ratio = 0.0;
        for (d, (param, density)) in self.space.params().iter().zip(densities).enumerate() {
            let v = &config[d];
            let (pg, pb) = match density {
                DimDensity::Categorical { good, bad } => {
                    let idx = match v {
                        ParamValue::Cat(c) => *c,
                        ParamValue::Null => match param.domain {
                            Domain::Categorical { n } => n,
                            _ => 0,
                        },
                        other => other.as_f64().unwrap_or(0.0) as usize,
                    };
                    (good.pmf(idx), bad.pmf(idx))
                }
                DimDensity::Numeric {
                    good,
                    bad,
                    good_null_rate,
                    bad_null_rate,
                } => match v {
                    ParamValue::Null => ((*good_null_rate).max(1e-6), (*bad_null_rate).max(1e-6)),
                    other => {
                        let x = other.as_f64().unwrap_or(0.0);
                        (
                            (1.0 - good_null_rate).max(1e-6) * good.pdf(x),
                            (1.0 - bad_null_rate).max(1e-6) * bad.pdf(x),
                        )
                    }
                },
            };
            log_ratio += (pg.max(1e-300)).ln() - (pb.max(1e-300)).ln();
        }
        log_ratio
    }
}

fn numeric_observations(trials: &[&Trial], dim: usize) -> (Vec<f64>, f64) {
    let mut values = Vec::new();
    let mut nulls = 0usize;
    for t in trials {
        match t.config[dim].as_f64() {
            Some(v) => values.push(v),
            None => nulls += 1,
        }
    }
    let total = trials.len().max(1) as f64;
    (values, nulls as f64 / total)
}

fn sample_dim(param: &Param, density: &DimDensity, rng: &mut StdRng) -> ParamValue {
    use rand::Rng;
    match density {
        DimDensity::Categorical { good, .. } => {
            let idx = good.sample(rng);
            match param.domain {
                Domain::Categorical { n } if param.optional && idx == n => ParamValue::Null,
                _ => ParamValue::Cat(idx),
            }
        }
        DimDensity::Numeric {
            good,
            good_null_rate,
            ..
        } => {
            if param.optional && rng.gen::<f64>() < *good_null_rate {
                return ParamValue::Null;
            }
            let x = good.sample(rng);
            match param.domain {
                Domain::Int { low, high } => ParamValue::Int((x.round() as i64).clamp(low, high)),
                _ => ParamValue::Float(x),
            }
        }
    }
}

impl Optimizer for Tpe {
    fn suggest(&mut self, rng: &mut StdRng) -> Config {
        // The `< 2` guard covers the degenerate surrogate: with `n_startup <= 1`
        // (or a warm start of a single observation) the split would produce an
        // empty "bad" side and fit densities on empty slices — keep sampling
        // randomly until two observations exist.
        if self.trials.len() < self.cfg.n_startup || self.trials.len() < 2 {
            return self.space.sample(rng);
        }
        let (good, bad) = self.split();
        let densities = self.densities(&good, &bad);
        let mut best: Option<(f64, Config)> = None;
        for _ in 0..self.cfg.n_ei_candidates.max(1) {
            let candidate = self.sample_candidate(&densities, rng);
            let score = self.ei_score(&densities, &candidate);
            if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                best = Some((score, candidate));
            }
        }
        best.map(|(_, c)| c)
            .unwrap_or_else(|| self.space.sample(rng))
    }

    fn observe(&mut self, config: Config, loss: f64) {
        self.trials.push(Trial { config, loss });
    }

    fn best(&self) -> Option<(&Config, f64)> {
        self.trials
            .iter()
            .min_by(|a, b| a.loss.total_cmp(&b.loss))
            .map(|t| (&t.config, t.loss))
    }

    fn n_observations(&self) -> usize {
        self.trials.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomSearch;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A mixed-space objective: best loss at cat==2 and x near 7.
    fn objective(config: &Config) -> f64 {
        let cat = config[0].as_cat().unwrap_or(0) as f64;
        let x = config[1].as_f64().unwrap_or(0.0);
        let cat_penalty = if cat == 2.0 { 0.0 } else { 1.0 };
        cat_penalty + (x - 7.0).abs() / 10.0
    }

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            Param::categorical("cat", 5),
            Param::float("x", 0.0, 10.0),
        ])
    }

    fn run<O: Optimizer>(opt: &mut O, iters: usize, seed: u64) -> f64 {
        let mut rng = rng(seed);
        for _ in 0..iters {
            let c = opt.suggest(&mut rng);
            let loss = objective(&c);
            opt.observe(c, loss);
        }
        opt.best().unwrap().1
    }

    #[test]
    fn tpe_improves_over_iterations() {
        let mut tpe = Tpe::new(space(), TpeConfig::default());
        let best = run(&mut tpe, 60, 1);
        assert!(best < 0.3, "TPE best loss = {best}");
    }

    #[test]
    fn tpe_not_much_worse_than_random_and_usually_better() {
        // Average best loss over several seeds; TPE's exploitation should help on this objective.
        let seeds = [1u64, 2, 3, 4, 5];
        let mut tpe_total = 0.0;
        let mut rnd_total = 0.0;
        for &s in &seeds {
            let mut tpe = Tpe::new(space(), TpeConfig::default());
            tpe_total += run(&mut tpe, 40, s);
            let mut rnd = RandomSearch::new(space());
            rnd_total += run(&mut rnd, 40, s);
        }
        assert!(
            tpe_total <= rnd_total + 0.25,
            "TPE ({tpe_total}) should not be much worse than random ({rnd_total})"
        );
    }

    #[test]
    fn tpe_suggestions_always_inside_space() {
        let s = SearchSpace::new(vec![
            Param::optional_categorical("a", 3),
            Param::optional_float("b", -5.0, 5.0),
            Param::int("c", 0, 20),
        ]);
        let mut tpe = Tpe::new(
            s.clone(),
            TpeConfig {
                n_startup: 3,
                ..TpeConfig::default()
            },
        );
        let mut rng = rng(9);
        for i in 0..60 {
            let c = tpe.suggest(&mut rng);
            assert!(
                s.contains(&c),
                "iteration {i} produced out-of-space config {c:?}"
            );
            let loss = c[2].as_f64().unwrap_or(10.0);
            tpe.observe(c, loss);
        }
    }

    #[test]
    fn warm_start_skips_random_phase_and_biases_search() {
        let s = space();
        let mut tpe = Tpe::new(
            s.clone(),
            TpeConfig {
                n_startup: 10,
                ..TpeConfig::default()
            },
        );
        // Warm observations: cat=2, x near 7 are good; others bad.
        let mut warm = Vec::new();
        for i in 0..20 {
            let cat = i % 5;
            let x = (i % 10) as f64;
            let cfg = vec![ParamValue::Cat(cat), ParamValue::Float(x)];
            let loss = objective(&cfg);
            warm.push((cfg, loss));
        }
        tpe.warm_start(warm);
        assert_eq!(tpe.n_observations(), 20);

        // With 20 observations the startup phase is over; suggestions should favour cat == 2.
        let mut rng = rng(4);
        let mut hits = 0;
        for _ in 0..30 {
            let c = tpe.suggest(&mut rng);
            if c[0].as_cat() == Some(2) {
                hits += 1;
            }
            let loss = objective(&c);
            tpe.observe(c, loss);
        }
        assert!(
            hits > 10,
            "warm-started TPE should exploit cat=2, hit {hits}/30"
        );
    }

    /// Regression: with `n_startup <= 1` (or a one-observation warm start) the
    /// surrogate used to be consulted after a single trial, splitting into an
    /// empty "bad" side and fitting densities on empty slices. The degenerate
    /// case must fall back to random sampling and stay inside the space.
    #[test]
    fn single_trial_falls_back_to_random_sampling() {
        for n_startup in [0usize, 1] {
            let s = space();
            let mut tpe = Tpe::new(
                s.clone(),
                TpeConfig {
                    n_startup,
                    ..TpeConfig::default()
                },
            );
            let mut rng = rng(7);
            // No observations at all: random phase.
            let c = tpe.suggest(&mut rng);
            assert!(s.contains(&c));
            tpe.observe(c, 1.0);
            // Exactly one observation: the split would be degenerate — the
            // suggestion must still be valid (random fallback, no panic).
            let c = tpe.suggest(&mut rng);
            assert!(s.contains(&c));
            tpe.observe(c, 2.0);
            // From two observations the surrogate path is safe.
            let c = tpe.suggest(&mut rng);
            assert!(s.contains(&c));
        }

        // Same degenerate shape through a one-observation warm start.
        let s = space();
        let mut tpe = Tpe::new(
            s.clone(),
            TpeConfig {
                n_startup: 1,
                ..TpeConfig::default()
            },
        );
        tpe.warm_start(vec![(
            vec![ParamValue::Cat(2), ParamValue::Float(7.0)],
            0.1,
        )]);
        assert_eq!(tpe.n_observations(), 1);
        let mut rng = rng(8);
        let c = tpe.suggest(&mut rng);
        assert!(s.contains(&c));
    }

    #[test]
    fn split_always_has_nonempty_groups() {
        let mut tpe = Tpe::new(space(), TpeConfig::default());
        for i in 0..5 {
            tpe.observe(
                vec![ParamValue::Cat(0), ParamValue::Float(i as f64)],
                i as f64,
            );
        }
        let (good, bad) = tpe.split();
        assert!(!good.is_empty());
        assert!(!bad.is_empty());
        assert!(
            good.iter()
                .map(|t| t.loss)
                .fold(f64::NEG_INFINITY, f64::max)
                <= bad.iter().map(|t| t.loss).fold(f64::INFINITY, f64::min) + 1e-12
        );
    }

    #[test]
    fn best_tracks_minimum_loss() {
        let mut tpe = Tpe::new(space(), TpeConfig::default());
        assert!(tpe.best().is_none());
        tpe.observe(vec![ParamValue::Cat(1), ParamValue::Float(1.0)], 5.0);
        tpe.observe(vec![ParamValue::Cat(2), ParamValue::Float(7.0)], 0.1);
        tpe.observe(vec![ParamValue::Cat(0), ParamValue::Float(9.0)], 3.0);
        let (cfg, loss) = tpe.best().unwrap();
        assert_eq!(loss, 0.1);
        assert_eq!(cfg[0].as_cat(), Some(2));
    }
}
