//! One-dimensional kernel density estimation — the surrogate model inside TPE.
//!
//! TPE models the "good" and "bad" observation groups separately; for continuous dimensions each
//! group is summarised by a Gaussian KDE, for categorical dimensions by a smoothed frequency
//! table. Both support sampling and density queries.

use rand::rngs::StdRng;
use rand::Rng;

/// Gaussian kernel density estimator over bounded support `[low, high]`.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    points: Vec<f64>,
    bandwidth: f64,
    low: f64,
    high: f64,
}

impl GaussianKde {
    /// Fit a KDE to observed points (clamped to `[low, high]`). When there are no points the
    /// estimator falls back to a uniform density over the support.
    pub fn fit(points: &[f64], low: f64, high: f64) -> GaussianKde {
        let span = (high - low).max(1e-12);
        let clamped: Vec<f64> = points.iter().map(|p| p.clamp(low, high)).collect();
        let bandwidth = if clamped.len() < 2 {
            span * 0.25
        } else {
            // Scott's rule, floored to a fraction of the support so the density never collapses.
            let n = clamped.len() as f64;
            let mean = clamped.iter().sum::<f64>() / n;
            let std = (clamped.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n).sqrt();
            (1.06 * std * n.powf(-0.2)).max(span * 0.05)
        };
        GaussianKde {
            points: clamped,
            bandwidth,
            low,
            high,
        }
    }

    /// The fitted bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Probability density at `x` (uniform density when no points were observed).
    pub fn pdf(&self, x: f64) -> f64 {
        let span = (self.high - self.low).max(1e-12);
        if self.points.is_empty() {
            return 1.0 / span;
        }
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * self.bandwidth);
        let mut total = 0.0;
        for &p in &self.points {
            let z = (x - p) / self.bandwidth;
            total += norm * (-0.5 * z * z).exp();
        }
        // Mix with a uniform floor so the ratio P_good/P_bad stays finite everywhere.
        let kde = total / self.points.len() as f64;
        0.95 * kde + 0.05 / span
    }

    /// Sample a point: pick a kernel centre uniformly, add Gaussian noise, clamp to the support.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        if self.points.is_empty() {
            return rng.gen_range(self.low..=self.high.max(self.low + 1e-12));
        }
        let centre = self.points[rng.gen_range(0..self.points.len())];
        // Box-Muller normal sample.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (centre + z * self.bandwidth).clamp(self.low, self.high)
    }
}

/// Smoothed categorical distribution over `n` choices (optionally plus a Null pseudo-choice).
#[derive(Debug, Clone)]
pub struct CategoricalDensity {
    probs: Vec<f64>,
}

impl CategoricalDensity {
    /// Fit from observed choice indices over a domain of `n` choices, with additive (Laplace)
    /// smoothing `alpha`.
    pub fn fit(observations: &[usize], n: usize, alpha: f64) -> CategoricalDensity {
        let mut counts = vec![alpha; n.max(1)];
        for &o in observations {
            if o < counts.len() {
                counts[o] += 1.0;
            }
        }
        let total: f64 = counts.iter().sum();
        CategoricalDensity {
            probs: counts.iter().map(|c| c / total).collect(),
        }
    }

    /// Probability of choice `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        self.probs.get(i).copied().unwrap_or(1e-12)
    }

    /// Number of choices.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when the density has no choices.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Sample a choice index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, p) in self.probs.iter().enumerate() {
            acc += p;
            if r <= acc {
                return i;
            }
        }
        self.probs.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn kde_density_peaks_near_data() {
        let kde = GaussianKde::fit(&[2.0, 2.1, 1.9, 2.05], 0.0, 10.0);
        assert!(kde.pdf(2.0) > kde.pdf(8.0));
        assert!(kde.pdf(2.0) > 0.0);
    }

    #[test]
    fn kde_empty_is_uniform() {
        let kde = GaussianKde::fit(&[], 0.0, 10.0);
        assert!((kde.pdf(1.0) - kde.pdf(9.0)).abs() < 1e-12);
        let mut rng = rng();
        for _ in 0..50 {
            let s = kde.sample(&mut rng);
            assert!((0.0..=10.0).contains(&s));
        }
    }

    #[test]
    fn kde_samples_stay_in_bounds_and_cluster() {
        let kde = GaussianKde::fit(&[5.0, 5.2, 4.8], 0.0, 10.0);
        let mut rng = rng();
        let samples: Vec<f64> = (0..300).map(|_| kde.sample(&mut rng)).collect();
        assert!(samples.iter().all(|s| (0.0..=10.0).contains(s)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn kde_single_point_has_positive_bandwidth() {
        let kde = GaussianKde::fit(&[3.0], 0.0, 10.0);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.pdf(3.0) > kde.pdf(9.0));
    }

    #[test]
    fn categorical_density_tracks_frequencies() {
        let d = CategoricalDensity::fit(&[0, 0, 0, 1], 3, 0.5);
        assert!(d.pmf(0) > d.pmf(1));
        assert!(d.pmf(1) > d.pmf(2));
        assert!((d.pmf(0) + d.pmf(1) + d.pmf(2) - 1.0).abs() < 1e-12);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn categorical_sampling_respects_distribution() {
        let d = CategoricalDensity::fit(&[1, 1, 1, 1, 1, 1, 1, 1, 0], 2, 0.1);
        let mut rng = rng();
        let ones = (0..500).filter(|_| d.sample(&mut rng) == 1).count();
        assert!(ones > 300, "expected mostly 1s, got {ones}");
    }

    #[test]
    fn categorical_empty_observations_is_uniform() {
        let d = CategoricalDensity::fit(&[], 4, 1.0);
        for i in 0..4 {
            assert!((d.pmf(i) - 0.25).abs() < 1e-12);
        }
    }
}
