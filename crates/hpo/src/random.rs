//! Random search — the simplest baseline optimizer (paper's "Random" baseline).

use rand::rngs::StdRng;

use crate::space::{Config, SearchSpace};
use crate::Optimizer;

/// Uniform random search over a [`SearchSpace`].
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: SearchSpace,
    history: Vec<(Config, f64)>,
}

impl RandomSearch {
    /// New random-search optimizer.
    pub fn new(space: SearchSpace) -> Self {
        RandomSearch {
            space,
            history: Vec::new(),
        }
    }

    /// The underlying search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// All observations so far.
    pub fn history(&self) -> &[(Config, f64)] {
        &self.history
    }
}

impl Optimizer for RandomSearch {
    fn suggest(&mut self, rng: &mut StdRng) -> Config {
        self.space.sample(rng)
    }

    fn observe(&mut self, config: Config, loss: f64) {
        self.history.push((config, loss));
    }

    fn best(&self) -> Option<(&Config, f64)> {
        self.history
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, l)| (c, *l))
    }

    fn n_observations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;
    use rand::SeedableRng;

    #[test]
    fn random_search_tracks_best() {
        let space = SearchSpace::new(vec![Param::float("x", 0.0, 1.0)]);
        let mut rs = RandomSearch::new(space);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = rs.suggest(&mut rng);
            let loss = c[0].as_f64().unwrap();
            rs.observe(c, loss);
        }
        assert_eq!(rs.n_observations(), 50);
        let (best_cfg, best_loss) = rs.best().unwrap();
        assert!(
            best_loss < 0.1,
            "after 50 uniform draws the min should be small"
        );
        assert_eq!(best_cfg[0].as_f64().unwrap(), best_loss);
        assert_eq!(rs.history().len(), 50);
    }

    #[test]
    fn best_is_none_before_observations() {
        let space = SearchSpace::new(vec![Param::categorical("a", 2)]);
        let rs = RandomSearch::new(space);
        assert!(rs.best().is_none());
    }

    #[test]
    fn suggestions_are_valid_configs() {
        let space = SearchSpace::new(vec![
            Param::categorical("a", 4),
            Param::optional_float("b", -1.0, 1.0),
        ]);
        let mut rs = RandomSearch::new(space.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let c = rs.suggest(&mut rng);
            assert!(space.contains(&c));
        }
    }
}
