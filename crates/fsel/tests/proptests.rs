//! Property-based tests for the feature-scoring functions: ranges, symmetry under relabelling,
//! and robustness to missing values.

use proptest::prelude::*;

use feataug_fsel::{chi_square, gini_score, mutual_information, pearson, spearman};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutual_information_nonnegative_and_finite(
        feature in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 2..80),
        labels_raw in proptest::collection::vec(0u8..4, 2..80),
    ) {
        let n = feature.len().min(labels_raw.len());
        let f: Vec<f64> = feature[..n].iter().map(|v| v.unwrap_or(f64::NAN)).collect();
        let y: Vec<f64> = labels_raw[..n].iter().map(|&v| v as f64).collect();
        let mi = mutual_information(&f, &y, true);
        prop_assert!(mi.is_finite());
        prop_assert!(mi >= 0.0);
    }

    #[test]
    fn chi_square_and_gini_nonnegative(
        feature in proptest::collection::vec(-50.0f64..50.0, 2..60),
        labels_raw in proptest::collection::vec(0u8..3, 2..60),
    ) {
        let n = feature.len().min(labels_raw.len());
        let f = &feature[..n];
        let y: Vec<f64> = labels_raw[..n].iter().map(|&v| v as f64).collect();
        prop_assert!(chi_square(f, &y) >= 0.0);
        let g = gini_score(f, &y);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&g));
    }

    #[test]
    fn correlations_bounded_by_one(
        feature in proptest::collection::vec(-1e3f64..1e3, 2..60),
        labels in proptest::collection::vec(-1e3f64..1e3, 2..60),
    ) {
        let n = feature.len().min(labels.len());
        let r = pearson(&feature[..n], &labels[..n]);
        let s = spearman(&feature[..n], &labels[..n]);
        prop_assert!(r.abs() <= 1.0 + 1e-9, "pearson {r}");
        prop_assert!(s.abs() <= 1.0 + 1e-9, "spearman {s}");
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        feature in proptest::collection::vec(0.1f64..100.0, 3..40),
        labels in proptest::collection::vec(-10.0f64..10.0, 3..40),
    ) {
        let n = feature.len().min(labels.len());
        let f = &feature[..n];
        let y = &labels[..n];
        let transformed: Vec<f64> = f.iter().map(|v| v.ln() * 3.0 + 1.0).collect();
        let a = spearman(f, y);
        let b = spearman(&transformed, y);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn feature_independent_of_shuffled_labels_scores_low_mi(
        values in proptest::collection::vec(0u8..2, 30..120),
    ) {
        // A constant feature carries zero information regardless of the labels.
        let y: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let constant = vec![1.0; y.len()];
        prop_assert!(mutual_information(&constant, &y, true).abs() < 1e-9);
        prop_assert!(gini_score(&constant, &y).abs() < 1e-9);
    }
}
