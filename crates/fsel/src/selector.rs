//! Feature selectors: the "FT + X selector" baselines of the paper.
//!
//! Each selector takes a [`Dataset`] whose columns are candidate features and returns the
//! indices of the `k` features it keeps. Filter selectors ([`ScoreSelector`]) rank features by a
//! cheap statistic or by a model's importances; wrapper selectors ([`WrapperSelector`])
//! greedily add (forward) or remove (backward) features by re-training the downstream model.

use feataug_ml::dataset::{Dataset, Task};
use feataug_ml::forest::{ForestConfig, RandomForest};
use feataug_ml::gbdt::{GbdtConfig, GradientBoosting};
use feataug_ml::linear::{LinearConfig, LinearRegression, LogisticRegression};
use feataug_ml::model::{evaluate, Model, ModelKind};

use crate::scoring::{chi_square, gini_score, mutual_information, spearman};

/// Chooses `k` feature columns out of a dataset.
pub trait FeatureSelector {
    /// Return the column indices of the selected features (at most `k`, best first).
    fn select(&self, data: &Dataset, k: usize) -> Vec<usize>;

    /// Human-readable name (paper table row label).
    fn name(&self) -> String;
}

/// The filter scoring methods supported by [`ScoreSelector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoringMethod {
    /// Mutual information between feature and label.
    MutualInformation,
    /// Chi-square statistic (classification only).
    ChiSquare,
    /// Gini-impurity reduction (classification only).
    Gini,
    /// Absolute Spearman rank correlation.
    Spearman,
    /// Absolute weights of a fitted linear model ("LR selector").
    LinearImportance,
    /// Split-gain importances of a fitted gradient-boosting model ("GBDT selector").
    GbdtImportance,
    /// Split-gain importances of a fitted random forest.
    ForestImportance,
}

impl ScoringMethod {
    /// Paper-style label.
    pub fn name(&self) -> &'static str {
        match self {
            ScoringMethod::MutualInformation => "MI",
            ScoringMethod::ChiSquare => "Chi2",
            ScoringMethod::Gini => "Gini",
            ScoringMethod::Spearman => "SC",
            ScoringMethod::LinearImportance => "LR",
            ScoringMethod::GbdtImportance => "GBDT",
            ScoringMethod::ForestImportance => "RF",
        }
    }

    /// True when the method only applies to classification tasks (paper: Chi2 and Gini rows are
    /// blank for the regression dataset).
    pub fn classification_only(&self) -> bool {
        matches!(self, ScoringMethod::ChiSquare | ScoringMethod::Gini)
    }
}

/// A filter selector: scores every feature independently and keeps the top `k`.
#[derive(Debug, Clone)]
pub struct ScoreSelector {
    method: ScoringMethod,
}

impl ScoreSelector {
    /// New selector with the given scoring method.
    pub fn new(method: ScoringMethod) -> Self {
        ScoreSelector { method }
    }

    /// Score every feature column of `data` (larger = keep).
    pub fn scores(&self, data: &Dataset) -> Vec<f64> {
        let classification = data.task.is_classification();
        match self.method {
            ScoringMethod::MutualInformation => (0..data.n_features())
                .map(|j| mutual_information(&data.x.column(j), &data.y, classification))
                .collect(),
            ScoringMethod::ChiSquare => (0..data.n_features())
                .map(|j| chi_square(&data.x.column(j), &data.y))
                .collect(),
            ScoringMethod::Gini => (0..data.n_features())
                .map(|j| gini_score(&data.x.column(j), &data.y))
                .collect(),
            ScoringMethod::Spearman => (0..data.n_features())
                .map(|j| spearman(&data.x.column(j), &data.y).abs())
                .collect(),
            ScoringMethod::LinearImportance => match data.task {
                Task::Regression => {
                    let mut m = LinearRegression::new(LinearConfig::default());
                    m.fit(data);
                    m.feature_importances()
                }
                _ => {
                    let mut m = LogisticRegression::new(LinearConfig::default());
                    m.fit(data);
                    m.feature_importances()
                }
            },
            ScoringMethod::GbdtImportance => {
                let mut m = GradientBoosting::new(GbdtConfig::default());
                m.fit(data);
                m.feature_importances()
            }
            ScoringMethod::ForestImportance => {
                let mut m = RandomForest::new(ForestConfig::default());
                m.fit(data);
                m.feature_importances()
            }
        }
    }
}

impl FeatureSelector for ScoreSelector {
    fn select(&self, data: &Dataset, k: usize) -> Vec<usize> {
        let scores = self.scores(data);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        order.truncate(k);
        order
    }

    fn name(&self) -> String {
        format!("FT+{}", self.method.name())
    }
}

/// Search direction of a wrapper selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapperDirection {
    /// Start empty, greedily add the feature that improves validation performance most.
    Forward,
    /// Start with all features, greedily remove the feature whose removal helps most.
    Backward,
}

/// A wrapper selector that re-trains the downstream model at every step
/// (the paper's "FT + Forward / Backward selector").
#[derive(Debug, Clone)]
pub struct WrapperSelector {
    direction: WrapperDirection,
    model: ModelKind,
    /// Train fraction of the internal split used to score feature subsets.
    train_fraction: f64,
    /// Seed of the internal split.
    seed: u64,
}

impl WrapperSelector {
    /// New wrapper selector using `model` as the evaluation model.
    pub fn new(direction: WrapperDirection, model: ModelKind) -> Self {
        WrapperSelector {
            direction,
            model,
            train_fraction: 0.7,
            seed: 17,
        }
    }

    fn score_subset(&self, data: &Dataset, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return f64::NEG_INFINITY;
        }
        let names: Vec<String> = subset
            .iter()
            .map(|&j| data.feature_names[j].clone())
            .collect();
        let rows: Vec<Vec<f64>> = (0..data.len())
            .map(|i| subset.iter().map(|&j| data.x.get(i, j)).collect())
            .collect();
        let sub = Dataset::new(
            feataug_ml::dataset::Matrix::from_rows(&rows),
            data.y.clone(),
            names,
            data.task,
        );
        let (train, valid) = sub.split2(self.train_fraction, self.seed);
        // evaluate() returns a loss view where lower is better; negate to get "higher is better".
        -evaluate(self.model, &train, &valid).loss
    }
}

impl FeatureSelector for WrapperSelector {
    fn select(&self, data: &Dataset, k: usize) -> Vec<usize> {
        let total = data.n_features();
        let k = k.min(total);
        match self.direction {
            WrapperDirection::Forward => {
                let mut selected: Vec<usize> = Vec::new();
                let mut remaining: Vec<usize> = (0..total).collect();
                while selected.len() < k && !remaining.is_empty() {
                    let mut best: Option<(f64, usize)> = None;
                    for (pos, &cand) in remaining.iter().enumerate() {
                        let mut trial = selected.clone();
                        trial.push(cand);
                        let score = self.score_subset(data, &trial);
                        if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                            best = Some((score, pos));
                        }
                    }
                    let (_, pos) = best.expect("remaining is non-empty");
                    selected.push(remaining.remove(pos));
                }
                selected
            }
            WrapperDirection::Backward => {
                let mut selected: Vec<usize> = (0..total).collect();
                while selected.len() > k {
                    let mut best: Option<(f64, usize)> = None;
                    for pos in 0..selected.len() {
                        let mut trial = selected.clone();
                        trial.remove(pos);
                        let score = self.score_subset(data, &trial);
                        if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                            best = Some((score, pos));
                        }
                    }
                    let (_, pos) = best.expect("selected is non-empty");
                    selected.remove(pos);
                }
                selected
            }
        }
    }

    fn name(&self) -> String {
        match self.direction {
            WrapperDirection::Forward => "FT+Forward".to_string(),
            WrapperDirection::Backward => "FT+Backward".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_ml::dataset::Matrix;

    /// 4 features: col 0 and 1 predict the label, col 2 and 3 are noise.
    fn dataset(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let signal = (i % 10) as f64;
            let label = if signal > 4.5 { 1.0 } else { 0.0 };
            let rows_i = vec![
                signal,
                label * 2.0 + (i % 3) as f64 * 0.01,
                ((i * 17) % 7) as f64,
                ((i * 29) % 11) as f64,
            ];
            rows.push(rows_i);
            y.push(label);
        }
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec![
                "signal".into(),
                "leak".into(),
                "noise1".into(),
                "noise2".into(),
            ],
            Task::BinaryClassification,
        )
    }

    #[test]
    fn filter_selectors_prefer_informative_features() {
        let data = dataset(300);
        for method in [
            ScoringMethod::MutualInformation,
            ScoringMethod::ChiSquare,
            ScoringMethod::Gini,
            ScoringMethod::Spearman,
            ScoringMethod::LinearImportance,
            ScoringMethod::GbdtImportance,
        ] {
            let sel = ScoreSelector::new(method);
            let chosen = sel.select(&data, 2);
            assert_eq!(chosen.len(), 2, "{method:?}");
            assert!(
                chosen.contains(&0) || chosen.contains(&1),
                "{method:?} picked {chosen:?}, expected an informative column"
            );
            assert!(
                !(chosen.contains(&2) && chosen.contains(&3)),
                "{method:?} picked only noise columns"
            );
        }
    }

    #[test]
    fn score_selector_scores_have_one_entry_per_feature() {
        let data = dataset(100);
        let sel = ScoreSelector::new(ScoringMethod::MutualInformation);
        assert_eq!(sel.scores(&data).len(), 4);
    }

    #[test]
    fn selecting_more_than_available_returns_all() {
        let data = dataset(50);
        let sel = ScoreSelector::new(ScoringMethod::Spearman);
        let chosen = sel.select(&data, 100);
        assert_eq!(chosen.len(), 4);
    }

    #[test]
    fn forward_selector_finds_signal() {
        let data = dataset(200);
        let sel = WrapperSelector::new(WrapperDirection::Forward, ModelKind::Linear);
        let chosen = sel.select(&data, 1);
        assert_eq!(chosen.len(), 1);
        assert!(
            chosen[0] == 0 || chosen[0] == 1,
            "forward picked {chosen:?}"
        );
    }

    #[test]
    fn backward_selector_drops_noise() {
        let data = dataset(200);
        let sel = WrapperSelector::new(WrapperDirection::Backward, ModelKind::Linear);
        let chosen = sel.select(&data, 2);
        assert_eq!(chosen.len(), 2);
        assert!(
            chosen.contains(&0) || chosen.contains(&1),
            "backward kept {chosen:?}"
        );
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(
            ScoreSelector::new(ScoringMethod::MutualInformation).name(),
            "FT+MI"
        );
        assert_eq!(
            ScoreSelector::new(ScoringMethod::ChiSquare).name(),
            "FT+Chi2"
        );
        assert_eq!(
            WrapperSelector::new(WrapperDirection::Forward, ModelKind::Linear).name(),
            "FT+Forward"
        );
        assert!(ScoringMethod::ChiSquare.classification_only());
        assert!(!ScoringMethod::MutualInformation.classification_only());
    }
}
