//! # feataug-fsel
//!
//! Feature scoring and selection.
//!
//! Two roles in the FeatAug reproduction:
//!
//! 1. **Baselines** — the paper compares against Featuretools combined with seven feature
//!    selectors (LR importance, GBDT importance, mutual information, chi-square, Gini index,
//!    forward selection, backward elimination). [`selector::FeatureSelector`] and its
//!    implementations provide those.
//! 2. **Low-cost proxies** — FeatAug's warm-up phase and its Query Template Identification
//!    component score candidate features with cheap statistics instead of training the full
//!    model. [`scoring::mutual_information`], [`scoring::spearman`] and friends provide the
//!    proxies compared in the paper's Table VIII (SC / MI / LR).

pub mod scoring;
pub mod selector;

pub use scoring::{chi_square, gini_score, mutual_information, pearson, spearman};
pub use selector::{
    FeatureSelector, ScoreSelector, ScoringMethod, WrapperDirection, WrapperSelector,
};
