//! Cheap feature-vs-label dependency scores.
//!
//! Every score accepts a raw feature vector (possibly containing NaN for missing values) and the
//! label vector, and returns a scalar where **larger means more dependent / more useful**.
//! Continuous inputs are discretised into quantile bins; missing values get their own bin, so a
//! feature that is "missing exactly for the negative class" still scores as informative.

/// Number of quantile bins used when discretising continuous values.
const DEFAULT_BINS: usize = 10;

/// Discretise values into at most `bins` quantile bins; NaN maps to an extra "missing" bin
/// (index `bins`). Returns (bin index per row, number of bins actually used + 1 for missing).
fn discretize(values: &[f64], bins: usize) -> (Vec<usize>, usize) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return (vec![0; values.len()], 1);
    }
    let mut sorted = finite.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted.dedup();
    // Use the distinct values directly when there are few of them (categorical codes, counts).
    let thresholds: Vec<f64> = if sorted.len() <= bins {
        sorted.clone()
    } else {
        (1..bins)
            .map(|i| {
                let pos = i as f64 / bins as f64 * (sorted.len() - 1) as f64;
                sorted[pos.round() as usize]
            })
            .collect()
    };
    let assign = |v: f64| -> usize {
        match thresholds.binary_search_by(|t| t.total_cmp(&v)) {
            Ok(i) => i,
            Err(i) => i,
        }
    };
    let n_value_bins = thresholds.len() + 1;
    let out: Vec<usize> = values
        .iter()
        .map(|&v| {
            if v.is_finite() {
                assign(v).min(n_value_bins - 1)
            } else {
                n_value_bins
            }
        })
        .collect();
    (out, n_value_bins + 1)
}

/// Discretise labels: classification labels map to their class index, regression targets to
/// quantile bins.
fn discretize_labels(labels: &[f64], classification: bool) -> (Vec<usize>, usize) {
    if classification {
        let classes: Vec<usize> = labels
            .iter()
            .map(|&y| y.round().max(0.0) as usize)
            .collect();
        let n = classes.iter().copied().max().unwrap_or(0) + 1;
        (classes, n)
    } else {
        discretize(labels, DEFAULT_BINS)
    }
}

/// Build a contingency table between two discrete assignments.
fn contingency(a: &[usize], na: usize, b: &[usize], nb: usize) -> Vec<Vec<f64>> {
    let mut table = vec![vec![0.0; nb]; na];
    for (&i, &j) in a.iter().zip(b) {
        table[i][j] += 1.0;
    }
    table
}

/// Mutual information (in nats) between a feature and the labels.
///
/// `classification` controls how the labels are discretised. This is the low-cost proxy the
/// paper uses by default (Section V-C and Section VI-C Optimization 1).
pub fn mutual_information(feature: &[f64], labels: &[f64], classification: bool) -> f64 {
    assert_eq!(feature.len(), labels.len());
    if feature.is_empty() {
        return 0.0;
    }
    let (fx, nx) = discretize(feature, DEFAULT_BINS);
    let (fy, ny) = discretize_labels(labels, classification);
    let table = contingency(&fx, nx, &fy, ny);
    let n = feature.len() as f64;
    let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..ny).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    let mut mi = 0.0;
    for i in 0..nx {
        for j in 0..ny {
            let joint = table[i][j] / n;
            if joint > 0.0 {
                let px = row_sums[i] / n;
                let py = col_sums[j] / n;
                mi += joint * (joint / (px * py)).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Pearson chi-square statistic between a (binned) feature and class labels.
/// Only meaningful for classification.
pub fn chi_square(feature: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(feature.len(), labels.len());
    if feature.is_empty() {
        return 0.0;
    }
    let (fx, nx) = discretize(feature, DEFAULT_BINS);
    let (fy, ny) = discretize_labels(labels, true);
    let table = contingency(&fx, nx, &fy, ny);
    let n = feature.len() as f64;
    let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..ny).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    let mut chi2 = 0.0;
    for i in 0..nx {
        for j in 0..ny {
            let expected = row_sums[i] * col_sums[j] / n;
            if expected > 0.0 {
                let diff = table[i][j] - expected;
                chi2 += diff * diff / expected;
            }
        }
    }
    chi2
}

/// Gini-impurity reduction of the class labels achieved by splitting on the binned feature
/// (a filter-style analogue of a one-level decision tree). Larger is better; classification only.
pub fn gini_score(feature: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(feature.len(), labels.len());
    if feature.is_empty() {
        return 0.0;
    }
    let (fx, nx) = discretize(feature, DEFAULT_BINS);
    let (fy, ny) = discretize_labels(labels, true);
    let n = feature.len() as f64;

    let gini = |counts: &[f64]| -> f64 {
        let total: f64 = counts.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        1.0 - counts
            .iter()
            .map(|c| (c / total) * (c / total))
            .sum::<f64>()
    };

    // Overall label impurity.
    let mut overall = vec![0.0; ny];
    for &y in &fy {
        overall[y] += 1.0;
    }
    let base = gini(&overall);

    // Weighted impurity within feature bins.
    let table = contingency(&fx, nx, &fy, ny);
    let mut weighted = 0.0;
    for row in &table {
        let total: f64 = row.iter().sum();
        weighted += total / n * gini(row);
    }
    (base - weighted).max(0.0)
}

/// Ranks with mid-rank tie handling.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation coefficient (absolute values are used as scores by callers).
/// Non-finite feature entries are treated as the feature's mean.
pub fn pearson(feature: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(feature.len(), labels.len());
    let n = feature.len();
    if n < 2 {
        return 0.0;
    }
    let finite: Vec<f64> = feature.iter().copied().filter(|v| v.is_finite()).collect();
    let fill = if finite.is_empty() {
        0.0
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };
    let x: Vec<f64> = feature
        .iter()
        .map(|&v| if v.is_finite() { v } else { fill })
        .collect();

    let mx = x.iter().sum::<f64>() / n as f64;
    let my = labels.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = labels[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 1e-300 || syy <= 1e-300 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Spearman rank correlation: Pearson correlation between the rank transforms.
/// This is the "SC" proxy of the paper's Table VIII.
pub fn spearman(feature: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(feature.len(), labels.len());
    if feature.len() < 2 {
        return 0.0;
    }
    // Missing feature values are ranked as the mean of the finite values (neutral position).
    let finite: Vec<f64> = feature.iter().copied().filter(|v| v.is_finite()).collect();
    let fill = if finite.is_empty() {
        0.0
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };
    let x: Vec<f64> = feature
        .iter()
        .map(|&v| if v.is_finite() { v } else { fill })
        .collect();
    pearson(&ranks(&x), &ranks(labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monotone_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        (x, y)
    }

    #[test]
    fn mi_higher_for_dependent_feature() {
        let labels: Vec<f64> = (0..200).map(|i| (i % 2) as f64).collect();
        let informative: Vec<f64> = labels.iter().map(|&y| y * 10.0 + 1.0).collect();
        let noise: Vec<f64> = (0..200).map(|i| ((i * 37) % 19) as f64).collect();
        let mi_info = mutual_information(&informative, &labels, true);
        let mi_noise = mutual_information(&noise, &labels, true);
        assert!(mi_info > mi_noise);
        assert!(mi_info > 0.5); // close to ln(2) for a perfectly predictive binary feature
        assert!(mi_noise < 0.1);
    }

    #[test]
    fn mi_nonnegative_and_zero_for_constant() {
        let labels: Vec<f64> = (0..100).map(|i| (i % 3) as f64).collect();
        let constant = vec![5.0; 100];
        let mi = mutual_information(&constant, &labels, true);
        assert!(mi.abs() < 1e-9);
        assert!(mutual_information(&[], &[], true) == 0.0);
    }

    #[test]
    fn mi_detects_missingness_pattern() {
        // Feature is NaN exactly when the label is 0 — missingness itself is informative.
        let labels: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let feature: Vec<f64> = labels
            .iter()
            .map(|&y| if y > 0.5 { 1.0 } else { f64::NAN })
            .collect();
        assert!(mutual_information(&feature, &labels, true) > 0.5);
    }

    #[test]
    fn mi_regression_mode_detects_dependence() {
        let (x, y) = monotone_data(200);
        let mi = mutual_information(&x, &y, false);
        let noise: Vec<f64> = (0..200).map(|i| ((i * 31) % 17) as f64).collect();
        assert!(mi > mutual_information(&noise, &y, false));
    }

    #[test]
    fn chi_square_identifies_association() {
        let labels: Vec<f64> = (0..300).map(|i| (i % 2) as f64).collect();
        let informative: Vec<f64> = labels.iter().map(|&y| y * 3.0).collect();
        let noise: Vec<f64> = (0..300).map(|i| ((i * 7) % 5) as f64).collect();
        assert!(chi_square(&informative, &labels) > chi_square(&noise, &labels));
        // A perfectly associated binary feature on n samples has chi2 = n.
        assert!((chi_square(&informative, &labels) - 300.0).abs() < 1e-6);
    }

    #[test]
    fn gini_score_bounds_and_ordering() {
        let labels: Vec<f64> = (0..200).map(|i| (i % 2) as f64).collect();
        let informative: Vec<f64> = labels.clone();
        let noise = vec![1.0; 200];
        let g_info = gini_score(&informative, &labels);
        let g_noise = gini_score(&noise, &labels);
        assert!(g_info > g_noise);
        assert!((g_info - 0.5).abs() < 1e-9); // perfect split of a balanced binary label
        assert!(g_noise.abs() < 1e-9);
    }

    #[test]
    fn spearman_perfect_monotone_is_one() {
        let (x, y) = monotone_data(50);
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-9);
        let y_rev: Vec<f64> = y.iter().rev().copied().collect();
        assert!((spearman(&x, &y_rev) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_nonlinear_monotone() {
        let x: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.ln()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-9);
        // Pearson on the same data is below 1 (nonlinear), Spearman captures the monotonicity.
        assert!(pearson(&x, &y) < 0.99);
    }

    #[test]
    fn pearson_zero_for_constant_inputs() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn spearman_with_missing_values_is_finite() {
        let x = vec![1.0, f64::NAN, 3.0, 4.0, f64::NAN];
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let s = spearman(&x, &y);
        assert!(s.is_finite());
        assert!(s > 0.0);
    }
}
