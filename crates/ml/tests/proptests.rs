//! Property-based tests for the ML substrate: metric ranges, split invariants and prediction
//! shape/ranges for every model family.

use proptest::prelude::*;

use feataug_ml::dataset::{Dataset, Matrix, Task};
use feataug_ml::metrics::{accuracy, auc, f1_macro, log_loss, rmse};
use feataug_ml::{evaluate, Metric, ModelKind};

fn dataset_from(rows: &[(f64, f64)], labels: &[f64], task: Task) -> Dataset {
    let matrix_rows: Vec<Vec<f64>> = rows.iter().map(|(a, b)| vec![*a, *b]).collect();
    Dataset::new(
        Matrix::from_rows(&matrix_rows),
        labels.to_vec(),
        vec!["a".into(), "b".into()],
        task,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn auc_bounded_and_antisymmetric(
        scores in proptest::collection::vec(-10.0f64..10.0, 4..60),
        labels_raw in proptest::collection::vec(0u8..2, 4..60),
    ) {
        let n = scores.len().min(labels_raw.len());
        let y: Vec<f64> = labels_raw[..n].iter().map(|&v| v as f64).collect();
        let s = &scores[..n];
        let a = auc(&y, s);
        prop_assert!((0.0..=1.0).contains(&a));
        // Negating the scores flips the AUC around 0.5.
        let neg: Vec<f64> = s.iter().map(|v| -v).collect();
        let b = auc(&y, &neg);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_ranges(
        preds in proptest::collection::vec(0.0f64..1.0, 2..50),
        labels_raw in proptest::collection::vec(0u8..2, 2..50),
    ) {
        let n = preds.len().min(labels_raw.len());
        let y: Vec<f64> = labels_raw[..n].iter().map(|&v| v as f64).collect();
        let p = &preds[..n];
        prop_assert!((0.0..=1.0).contains(&accuracy(&y, p)));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f1_macro(&y, &y)));
        prop_assert!(rmse(&y, p) >= 0.0);
        prop_assert!(log_loss(&y, p) >= 0.0);
    }

    #[test]
    fn split_partitions_and_preserves_rows(
        n in 10usize..200,
        train_frac in 0.1f64..0.8,
        seed in 0u64..1000,
    ) {
        let rows: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, (i * 3 % 7) as f64)).collect();
        let labels: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let data = dataset_from(&rows, &labels, Task::BinaryClassification);
        let (train, valid, test) = data.split3(train_frac, (1.0 - train_frac) / 2.0, seed);
        prop_assert_eq!(train.len() + valid.len() + test.len(), n);
        prop_assert_eq!(train.n_features(), 2);
    }

    #[test]
    fn binary_models_emit_probabilities(
        seed in 0u64..100,
        n in 40usize..120,
    ) {
        let rows: Vec<(f64, f64)> = (0..n)
            .map(|i| (((i + seed as usize) % 10) as f64, (i % 4) as f64))
            .collect();
        let labels: Vec<f64> = rows.iter().map(|(a, _)| if *a > 4.5 { 1.0 } else { 0.0 }).collect();
        let data = dataset_from(&rows, &labels, Task::BinaryClassification);
        let (train, valid) = data.split2(0.7, seed);
        for kind in [ModelKind::Linear, ModelKind::GradientBoosting, ModelKind::RandomForest] {
            let result = evaluate(kind, &train, &valid);
            prop_assert_eq!(result.metric, Metric::Auc);
            prop_assert!((0.0..=1.0).contains(&result.value), "{kind}: {}", result.value);
        }
    }
}
