//! # feataug-ml
//!
//! Downstream machine-learning models and metrics for the FeatAug reproduction.
//!
//! The FeatAug search loop treats the model as a black box: it trains a model on an augmented
//! training split and reads back a single validation metric. This crate provides the model
//! families used in the paper's evaluation —
//!
//! * [`linear::LogisticRegression`] / [`linear::LinearRegression`] ("LR"),
//! * [`forest::RandomForest`] ("RF"),
//! * [`gbdt::GradientBoosting`] (an XGBoost-style second-order boosted-tree model, "XGB"),
//! * [`fm::DeepFm`] (a factorization machine with a small MLP head, "DeepFM"),
//!
//! plus the metrics (AUC, macro-F1, RMSE, log-loss, accuracy), a [`dataset::Dataset`]
//! container with deterministic train/validation/test splitting, and the [`evaluate`] entry
//! point the feature-search code calls.

// The numeric kernels index several parallel arrays (rows, gradients, factor
// sums) by one loop variable; rewriting them as zipped iterators obscures the
// math without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod dataset;
pub mod fm;
pub mod forest;
pub mod gbdt;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod tree;

pub use dataset::{Dataset, Matrix, Task};
pub use model::{evaluate, EvalResult, Metric, Model, ModelKind};
