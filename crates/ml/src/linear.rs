//! Linear models: logistic regression (binary and one-vs-rest multi-class) and ordinary linear
//! regression, trained with full-batch gradient descent and L2 regularisation.
//!
//! These correspond to the paper's "LR" downstream model (scikit-learn `LogisticRegression` /
//! `LinearRegression`).

use crate::dataset::{Dataset, Matrix, Task};
use crate::metrics::sigmoid;
use crate::model::Model;

/// Training hyperparameters shared by the linear models.
#[derive(Debug, Clone)]
pub struct LinearConfig {
    /// Learning rate of gradient descent.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Standardise features before fitting (recommended).
    pub standardize: bool,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            learning_rate: 0.1,
            epochs: 200,
            l2: 1e-4,
            standardize: true,
        }
    }
}

/// Internal single binary logistic model (weights + bias) on standardised features.
#[derive(Debug, Clone, Default)]
struct BinaryLogit {
    weights: Vec<f64>,
    bias: f64,
}

impl BinaryLogit {
    fn fit(x: &Matrix, y: &[f64], cfg: &LinearConfig) -> Self {
        let n = x.rows().max(1);
        let d = x.cols();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..cfg.epochs {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for i in 0..x.rows() {
                let row = x.row(i);
                let z = b + row.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>();
                let err = sigmoid(z) - y[i];
                for j in 0..d {
                    grad_w[j] += err * row[j];
                }
                grad_b += err;
            }
            for j in 0..d {
                w[j] -= cfg.learning_rate * (grad_w[j] / n as f64 + cfg.l2 * w[j]);
            }
            b -= cfg.learning_rate * grad_b / n as f64;
        }
        BinaryLogit {
            weights: w,
            bias: b,
        }
    }

    fn decision(&self, row: &[f64]) -> f64 {
        self.bias
            + row
                .iter()
                .zip(&self.weights)
                .map(|(xi, wi)| xi * wi)
                .sum::<f64>()
    }
}

/// Logistic regression: binary or one-vs-rest multi-class.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    cfg: LinearConfig,
    task: Task,
    models: Vec<BinaryLogit>,
    scaler: Vec<(f64, f64)>,
    fitted: bool,
}

impl LogisticRegression {
    /// New model with the given configuration.
    pub fn new(cfg: LinearConfig) -> Self {
        LogisticRegression {
            cfg,
            task: Task::BinaryClassification,
            models: Vec::new(),
            scaler: Vec::new(),
            fitted: false,
        }
    }

    /// Per-feature absolute weight, averaged over the one-vs-rest models — used by the
    /// "FT + LR selector" baseline as a feature-importance score.
    pub fn feature_importances(&self) -> Vec<f64> {
        if self.models.is_empty() {
            return Vec::new();
        }
        let d = self.models[0].weights.len();
        let mut imp = vec![0.0; d];
        for m in &self.models {
            for j in 0..d {
                imp[j] += m.weights[j].abs();
            }
        }
        for v in &mut imp {
            *v /= self.models.len() as f64;
        }
        imp
    }

    /// Standardise a prediction-time matrix with the training statistics; non-finite cells
    /// (e.g. NULL features of unmatched left-join rows) map to the training mean.
    fn standardized(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                let raw = out.get(i, j);
                let v = if self.scaler.is_empty() {
                    if raw.is_finite() {
                        raw
                    } else {
                        0.0
                    }
                } else {
                    let (mean, std) = self.scaler[j];
                    if raw.is_finite() {
                        (raw - mean) / std
                    } else {
                        0.0
                    }
                };
                out.set(i, j, v);
            }
        }
        out
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new(LinearConfig::default())
    }
}

impl Model for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        self.task = data.task;
        let mut train = data.clone();
        train.impute_mean();
        self.scaler = if self.cfg.standardize {
            train.standardize()
        } else {
            Vec::new()
        };

        self.models.clear();
        match data.task {
            Task::Regression => {
                // Treat as binary on the sign of the centred target; callers should use
                // LinearRegression for regression tasks, but keep this total.
                let mean = train.y.iter().sum::<f64>() / train.len().max(1) as f64;
                let y: Vec<f64> = train
                    .y
                    .iter()
                    .map(|&v| if v > mean { 1.0 } else { 0.0 })
                    .collect();
                self.models.push(BinaryLogit::fit(&train.x, &y, &self.cfg));
            }
            Task::BinaryClassification => {
                self.models
                    .push(BinaryLogit::fit(&train.x, &train.y, &self.cfg));
            }
            Task::MultiClassification { n_classes } => {
                for c in 0..n_classes {
                    let y: Vec<f64> = train
                        .y
                        .iter()
                        .map(|&v| if (v.round() as usize) == c { 1.0 } else { 0.0 })
                        .collect();
                    self.models.push(BinaryLogit::fit(&train.x, &y, &self.cfg));
                }
            }
        }
        self.fitted = true;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "predict called before fit");
        let x = self.standardized(x);
        match self.task {
            Task::MultiClassification { .. } => (0..x.rows())
                .map(|i| {
                    let row = x.row(i);
                    let (best, _) = self
                        .models
                        .iter()
                        .enumerate()
                        .map(|(c, m)| (c, m.decision(row)))
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("at least one class");
                    best as f64
                })
                .collect(),
            _ => (0..x.rows())
                .map(|i| sigmoid(self.models[0].decision(x.row(i))))
                .collect(),
        }
    }
}

/// Ordinary least-squares linear regression trained by gradient descent with L2.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    cfg: LinearConfig,
    weights: Vec<f64>,
    bias: f64,
    scaler: Vec<(f64, f64)>,
    /// Mean of the training target, used to centre the target during fitting.
    y_mean: f64,
    fitted: bool,
}

impl LinearRegression {
    /// New model with the given configuration.
    pub fn new(cfg: LinearConfig) -> Self {
        LinearRegression {
            cfg,
            weights: Vec::new(),
            bias: 0.0,
            scaler: Vec::new(),
            y_mean: 0.0,
            fitted: false,
        }
    }

    /// Absolute coefficient per feature.
    pub fn feature_importances(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w.abs()).collect()
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new(LinearConfig::default())
    }
}

impl Model for LinearRegression {
    fn fit(&mut self, data: &Dataset) {
        let mut train = data.clone();
        train.impute_mean();
        self.scaler = if self.cfg.standardize {
            train.standardize()
        } else {
            Vec::new()
        };
        self.y_mean = train.y.iter().sum::<f64>() / train.len().max(1) as f64;
        let y: Vec<f64> = train.y.iter().map(|v| v - self.y_mean).collect();

        let n = train.len().max(1);
        let d = train.n_features();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..self.cfg.epochs {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for i in 0..train.len() {
                let row = train.x.row(i);
                let pred = b + row.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>();
                let err = pred - y[i];
                for j in 0..d {
                    grad_w[j] += err * row[j];
                }
                grad_b += err;
            }
            for j in 0..d {
                w[j] -= self.cfg.learning_rate * (grad_w[j] / n as f64 + self.cfg.l2 * w[j]);
            }
            b -= self.cfg.learning_rate * grad_b / n as f64;
        }
        self.weights = w;
        self.bias = b;
        self.fitted = true;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "predict called before fit");
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let mut z = self.bias + self.y_mean;
            for j in 0..x.cols() {
                let v = if self.scaler.is_empty() {
                    x.get(i, j)
                } else {
                    let (mean, std) = self.scaler[j];
                    (x.get(i, j) - mean) / std
                };
                let v = if v.is_finite() { v } else { 0.0 };
                z += self.weights[j] * v;
            }
            out.push(z);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auc, rmse};

    fn separable_binary(n: usize) -> Dataset {
        // y = 1 iff x0 + x1 > 0, with a margin.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i as f64 / n as f64) * 4.0 - 2.0;
            let b = ((i * 7 % n) as f64 / n as f64) * 4.0 - 2.0;
            rows.push(vec![a, b]);
            y.push(if a + b > 0.0 { 1.0 } else { 0.0 });
        }
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        )
    }

    #[test]
    fn logistic_learns_separable_data() {
        let data = separable_binary(200);
        let mut model = LogisticRegression::default();
        model.fit(&data);
        let probs = model.predict(&data.x);
        assert!(
            auc(&data.y, &probs) > 0.95,
            "AUC = {}",
            auc(&data.y, &probs)
        );
    }

    #[test]
    fn logistic_multiclass_one_vs_rest() {
        // Three linearly-separated blobs along x0.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            rows.push(vec![c as f64 * 10.0 + (i % 5) as f64 * 0.1, 1.0]);
            y.push(c as f64);
        }
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["x".into(), "one".into()],
            Task::MultiClassification { n_classes: 3 },
        );
        let mut model = LogisticRegression::default();
        model.fit(&data);
        let preds = model.predict(&data.x);
        assert!(accuracy(&data.y, &preds) > 0.9);
    }

    #[test]
    fn logistic_importances_track_informative_features() {
        let data = separable_binary(200).with_feature("noise", &vec![0.0; 200]);
        let mut model = LogisticRegression::default();
        model.fit(&data);
        let imp = model.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!(imp[0] > imp[2]);
        assert!(imp[1] > imp[2]);
    }

    #[test]
    fn linear_regression_recovers_line() {
        // y = 3x - 2 with no noise.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0).collect();
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y.clone(),
            vec!["x".into()],
            Task::Regression,
        );
        let mut model = LinearRegression::default();
        model.fit(&data);
        let preds = model.predict(&data.x);
        assert!(rmse(&y, &preds) < 0.2, "rmse = {}", rmse(&y, &preds));
    }

    #[test]
    fn linear_regression_handles_nan_inputs() {
        let rows = vec![vec![1.0], vec![f64::NAN], vec![3.0], vec![4.0]];
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["x".into()],
            Task::Regression,
        );
        let mut model = LinearRegression::default();
        model.fit(&data);
        let preds = model.predict(&data.x);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    #[should_panic(expected = "predict called before fit")]
    fn predict_before_fit_panics() {
        let model = LogisticRegression::default();
        let _ = model.predict(&Matrix::zeros(1, 1));
    }
}
