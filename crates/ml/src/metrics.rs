//! Evaluation metrics: AUC, macro-F1, RMSE, log-loss and accuracy.

/// Area under the ROC curve for binary classification.
///
/// `scores` are arbitrary real-valued rankings (higher = more positive); `labels` are 0/1.
/// Ties are handled with the standard mid-rank correction. Returns 0.5 when either class is
/// absent (an uninformative classifier).
pub fn auc(labels: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average ranks over ties), then use the Mann-Whitney U statistic.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // ranks are 1-based; average rank of the tie block [i, j]
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(l, _)| **l > 0.5)
        .map(|(_, r)| *r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Root mean squared error for regression.
pub fn rmse(labels: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(labels.len(), predictions.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mse: f64 = labels
        .iter()
        .zip(predictions)
        .map(|(y, p)| (y - p) * (y - p))
        .sum::<f64>()
        / labels.len() as f64;
    mse.sqrt()
}

/// Binary log-loss (cross entropy) with probability clipping.
pub fn log_loss(labels: &[f64], probabilities: &[f64]) -> f64 {
    assert_eq!(labels.len(), probabilities.len());
    if labels.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    labels
        .iter()
        .zip(probabilities)
        .map(|(y, p)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum::<f64>()
        / labels.len() as f64
}

/// Classification accuracy over hard class predictions.
pub fn accuracy(labels: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(labels.len(), predictions.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .zip(predictions)
        .filter(|(y, p)| (**y - **p).abs() < 0.5)
        .count();
    correct as f64 / labels.len() as f64
}

/// Macro-averaged F1 score over integer class labels `0..n_classes`.
///
/// Classes absent from the labels contribute an F1 of 0 only if they were predicted
/// (scikit-learn's behaviour of averaging over the union of observed label/prediction classes).
pub fn f1_macro(labels: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(labels.len(), predictions.len());
    if labels.is_empty() {
        return 0.0;
    }
    let to_class = |v: f64| v.round().max(0.0) as usize;
    let mut classes: Vec<usize> = labels
        .iter()
        .chain(predictions.iter())
        .map(|&v| to_class(v))
        .collect();
    classes.sort_unstable();
    classes.dedup();

    let mut f1_sum = 0.0;
    for &c in &classes {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for (&y, &p) in labels.iter().zip(predictions) {
            let y_is = to_class(y) == c;
            let p_is = to_class(p) == c;
            match (y_is, p_is) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        f1_sum += f1;
    }
    f1_sum / classes.len() as f64
}

/// Numerically-stable sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!((auc(&labels, &[0.1, 0.2, 0.8, 0.9]) - 1.0).abs() < EPS);
        assert!((auc(&labels, &[0.9, 0.8, 0.2, 0.1]) - 0.0).abs() < EPS);
    }

    #[test]
    fn auc_with_ties_and_known_value() {
        // pos {0.8, 0.4}, neg {0.4, 0.2}:
        // wins = (0.8>0.4) + (0.8>0.2) + (0.4 vs 0.4 tie = 0.5) + (0.4>0.2) = 3.5 of 4 pairs.
        let labels = [1.0, 1.0, 0.0, 0.0];
        let scores = [0.8, 0.4, 0.4, 0.2];
        assert!((auc(&labels, &scores) - 3.5 / 4.0).abs() < EPS);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[1.0, 1.0], &[0.3, 0.4]), 0.5);
        assert_eq!(auc(&[0.0, 0.0], &[0.3, 0.4]), 0.5);
    }

    #[test]
    fn auc_invariant_to_monotone_transform() {
        let labels = [0.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let scores = [0.1, 0.7, 0.3, 0.9, 0.6, 0.2];
        let scaled: Vec<f64> = scores.iter().map(|s| s * 100.0 + 5.0).collect();
        assert!((auc(&labels, &scores) - auc(&labels, &scaled)).abs() < EPS);
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 5.0]) - (4.0f64 / 3.0).sqrt()).abs() < EPS);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_bounds() {
        let perfect = log_loss(&[1.0, 0.0], &[1.0, 0.0]);
        assert!(perfect < 1e-9);
        let bad = log_loss(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(bad > 10.0);
        let half = log_loss(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((half - 0.5f64.ln().abs()).abs() < EPS);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert!((accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]) - 2.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn f1_macro_perfect_is_one() {
        let y = [0.0, 1.0, 2.0, 0.0, 1.0, 2.0];
        assert!((f1_macro(&y, &y) - 1.0).abs() < EPS);
    }

    #[test]
    fn f1_macro_known_value() {
        // Binary case: TP=1, FP=1, FN=1, TN=1 for class 1 -> F1=0.5; class 0 symmetric -> macro 0.5
        let y = [1.0, 1.0, 0.0, 0.0];
        let p = [1.0, 0.0, 1.0, 0.0];
        assert!((f1_macro(&y, &p) - 0.5).abs() < EPS);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < EPS);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < EPS);
    }
}
