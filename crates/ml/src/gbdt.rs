//! Gradient-boosted decision trees with a second-order (XGBoost-style) objective.
//!
//! This is the paper's "XGB" downstream model. Each boosting round fits a regression tree to the
//! current gradients and hessians of the loss; leaf weights are `-G / (H + λ)` and predictions
//! accumulate with shrinkage. Binary classification uses the logistic loss, regression the
//! squared loss, and multi-class classification a one-vs-rest ensemble of binary boosters.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::{Dataset, Matrix, Task};
use crate::metrics::sigmoid;
use crate::model::Model;
use crate::tree::{DecisionTree, SplitCriterion, TreeConfig};

/// Boosting hyperparameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage / learning rate.
    pub learning_rate: f64,
    /// Per-tree growth configuration.
    pub tree: TreeConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_rounds: 40,
            learning_rate: 0.2,
            tree: TreeConfig {
                max_depth: 4,
                ..TreeConfig::default()
            },
            seed: 42,
        }
    }
}

/// One boosted ensemble for a single output (binary logit or regression target).
#[derive(Debug, Clone, Default)]
struct Booster {
    base_score: f64,
    trees: Vec<DecisionTree>,
}

impl Booster {
    fn raw_predict(&self, x: &Matrix, learning_rate: f64) -> Vec<f64> {
        let mut out = vec![self.base_score; x.rows()];
        for tree in &self.trees {
            for (o, p) in out.iter_mut().zip(tree.predict(x)) {
                *o += learning_rate * p;
            }
        }
        out
    }
}

/// A fitted gradient-boosting model.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    cfg: GbdtConfig,
    task: Task,
    boosters: Vec<Booster>,
    n_features: usize,
    fitted: bool,
}

impl GradientBoosting {
    /// Create an unfitted model.
    pub fn new(cfg: GbdtConfig) -> Self {
        GradientBoosting {
            cfg,
            task: Task::BinaryClassification,
            boosters: Vec::new(),
            n_features: 0,
            fitted: false,
        }
    }

    /// Total split-gain importance per feature across all trees, normalised to sum to 1.
    /// This backs the "FT + GBDT selector" baseline.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for b in &self.boosters {
            for tree in &b.trees {
                for (j, v) in tree.feature_importances().iter().enumerate() {
                    imp[j] += v;
                }
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Fit a single booster for a binary (0/1) or regression target.
    fn fit_single(&self, x: &Matrix, y: &[f64], binary: bool, seed: u64) -> Booster {
        let n = y.len();
        let base_score = if binary {
            // log-odds of the base rate, clipped away from the extremes
            let p = (y.iter().sum::<f64>() / n.max(1) as f64).clamp(1e-6, 1.0 - 1e-6);
            (p / (1.0 - p)).ln()
        } else {
            y.iter().sum::<f64>() / n.max(1) as f64
        };
        let mut booster = Booster {
            base_score,
            ..Booster::default()
        };

        let mut raw = vec![booster.base_score; n];
        for round in 0..self.cfg.n_rounds {
            let mut grad = vec![0.0; n];
            let mut hess = vec![0.0; n];
            for i in 0..n {
                if binary {
                    let p = sigmoid(raw[i]);
                    grad[i] = p - y[i];
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                } else {
                    grad[i] = raw[i] - y[i];
                    hess[i] = 1.0;
                }
            }
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(round as u64));
            let mut tree = DecisionTree::new(SplitCriterion::Variance, self.cfg.tree.clone());
            tree.fit_grad_hess(x, &grad, &hess, &mut rng);
            let update = tree.predict(x);
            for i in 0..n {
                raw[i] += self.cfg.learning_rate * update[i];
            }
            booster.trees.push(tree);
        }
        booster
    }
}

impl Default for GradientBoosting {
    fn default() -> Self {
        Self::new(GbdtConfig::default())
    }
}

impl Model for GradientBoosting {
    fn fit(&mut self, data: &Dataset) {
        self.task = data.task;
        self.n_features = data.n_features();
        let mut train = data.clone();
        train.impute_mean();

        self.boosters.clear();
        match data.task {
            Task::Regression => {
                self.boosters
                    .push(self.fit_single(&train.x, &train.y, false, self.cfg.seed));
            }
            Task::BinaryClassification => {
                self.boosters
                    .push(self.fit_single(&train.x, &train.y, true, self.cfg.seed));
            }
            Task::MultiClassification { n_classes } => {
                for c in 0..n_classes {
                    let y: Vec<f64> = train
                        .y
                        .iter()
                        .map(|&v| if (v.round() as usize) == c { 1.0 } else { 0.0 })
                        .collect();
                    self.boosters.push(self.fit_single(
                        &train.x,
                        &y,
                        true,
                        self.cfg.seed.wrapping_add(1000 * c as u64),
                    ));
                }
            }
        }
        self.fitted = true;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "predict called before fit");
        match self.task {
            Task::Regression => self.boosters[0].raw_predict(x, self.cfg.learning_rate),
            Task::BinaryClassification => self.boosters[0]
                .raw_predict(x, self.cfg.learning_rate)
                .into_iter()
                .map(sigmoid)
                .collect(),
            Task::MultiClassification { .. } => {
                let scores: Vec<Vec<f64>> = self
                    .boosters
                    .iter()
                    .map(|b| b.raw_predict(x, self.cfg.learning_rate))
                    .collect();
                (0..x.rows())
                    .map(|i| {
                        scores
                            .iter()
                            .enumerate()
                            .map(|(c, s)| (c, s[i]))
                            .max_by(|a, b| a.1.total_cmp(&b.1))
                            .map(|(c, _)| c as f64)
                            .unwrap_or(0.0)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auc, rmse};

    #[test]
    fn gbdt_binary_solves_xor() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = (i % 20) as f64 / 20.0;
            let b = ((i / 20) % 15) as f64 / 15.0;
            rows.push(vec![a, b]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y.clone(),
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        );
        let mut model = GradientBoosting::default();
        model.fit(&data);
        let probs = model.predict(&data.x);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        assert!(auc(&y, &probs) > 0.97, "auc = {}", auc(&y, &probs));
    }

    #[test]
    fn gbdt_regression_beats_constant_predictor() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y.clone(),
            vec!["x".into()],
            Task::Regression,
        );
        let mut model = GradientBoosting::default();
        model.fit(&data);
        let preds = model.predict(&data.x);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let baseline = rmse(&y, &vec![mean; y.len()]);
        assert!(rmse(&y, &preds) < baseline * 0.3);
    }

    #[test]
    fn gbdt_multiclass_one_vs_rest() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let c = i % 4;
            rows.push(vec![c as f64 * 3.0 + (i % 5) as f64 * 0.05]);
            y.push(c as f64);
        }
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y.clone(),
            vec!["x".into()],
            Task::MultiClassification { n_classes: 4 },
        );
        let mut model = GradientBoosting::default();
        model.fit(&data);
        let preds = model.predict(&data.x);
        assert!(accuracy(&y, &preds) > 0.95);
    }

    #[test]
    fn gbdt_importances_identify_signal_feature() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let signal = (i % 10) as f64;
            let noise = ((i * 13) % 7) as f64;
            rows.push(vec![noise, signal]);
            y.push(if signal > 4.5 { 1.0 } else { 0.0 });
        }
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["noise".into(), "signal".into()],
            Task::BinaryClassification,
        );
        let mut model = GradientBoosting::default();
        model.fit(&data);
        let imp = model.feature_importances();
        assert!(imp[1] > imp[0]);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gbdt_deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..100).map(|i| ((i % 10) > 4) as u8 as f64).collect();
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        );
        let mut m1 = GradientBoosting::default();
        let mut m2 = GradientBoosting::default();
        m1.fit(&data);
        m2.fit(&data);
        assert_eq!(m1.predict(&data.x), m2.predict(&data.x));
    }
}
