//! The [`Model`] trait, model-kind selection and the [`evaluate`] entry point used by the
//! feature-search algorithms.

use crate::dataset::{Dataset, Matrix, Task};
use crate::fm::{DeepFm, DeepFmConfig};
use crate::forest::{ForestConfig, RandomForest};
use crate::gbdt::{GbdtConfig, GradientBoosting};
use crate::linear::{LinearConfig, LinearRegression, LogisticRegression};
use crate::metrics::{auc, f1_macro, rmse};

/// A trainable downstream model.
///
/// `predict` returns, per row:
/// * the positive-class probability for binary classification,
/// * the predicted class index for multi-class classification,
/// * the predicted value for regression.
pub trait Model {
    /// Fit the model on a training dataset.
    fn fit(&mut self, data: &Dataset);
    /// Predict on a feature matrix (see trait docs for the meaning per task).
    fn predict(&self, x: &Matrix) -> Vec<f64>;
}

/// The downstream model families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression (classification) / linear regression (regression). Paper: "LR".
    Linear,
    /// Gradient-boosted trees with a second-order objective. Paper: "XGB".
    GradientBoosting,
    /// Random forest. Paper: "RF".
    RandomForest,
    /// Factorization machine + MLP. Paper: "DeepFM".
    DeepFm,
}

impl ModelKind {
    /// Every model kind, in the order the paper's tables list them.
    pub fn all() -> &'static [ModelKind] {
        &[
            ModelKind::Linear,
            ModelKind::GradientBoosting,
            ModelKind::RandomForest,
            ModelKind::DeepFm,
        ]
    }

    /// Paper-style short name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Linear => "LR",
            ModelKind::GradientBoosting => "XGB",
            ModelKind::RandomForest => "RF",
            ModelKind::DeepFm => "DeepFM",
        }
    }

    /// Parse a paper-style short name (case-insensitive).
    pub fn parse(name: &str) -> Option<ModelKind> {
        match name.to_ascii_uppercase().as_str() {
            "LR" | "LINEAR" => Some(ModelKind::Linear),
            "XGB" | "GBDT" => Some(ModelKind::GradientBoosting),
            "RF" => Some(ModelKind::RandomForest),
            "DEEPFM" | "FM" => Some(ModelKind::DeepFm),
            _ => None,
        }
    }

    /// Instantiate an unfitted model of this kind for the given task, with default
    /// hyperparameters tuned for the small synthetic datasets of this reproduction.
    pub fn build(&self, task: Task) -> Box<dyn Model> {
        match (self, task) {
            (ModelKind::Linear, Task::Regression) => {
                Box::new(LinearRegression::new(LinearConfig::default()))
            }
            (ModelKind::Linear, _) => Box::new(LogisticRegression::new(LinearConfig::default())),
            (ModelKind::GradientBoosting, _) => {
                Box::new(GradientBoosting::new(GbdtConfig::default()))
            }
            (ModelKind::RandomForest, _) => Box::new(RandomForest::new(ForestConfig::default())),
            (ModelKind::DeepFm, _) => Box::new(DeepFm::new(DeepFmConfig::default())),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The evaluation metric reported for a dataset (paper Section VII-A5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Area under the ROC curve (binary classification; higher is better).
    Auc,
    /// Macro-averaged F1 (multi-class classification; higher is better).
    F1Macro,
    /// Root mean squared error (regression; lower is better).
    Rmse,
}

impl Metric {
    /// The conventional metric for a task: AUC for binary, macro-F1 for multi-class, RMSE for
    /// regression.
    pub fn for_task(task: Task) -> Metric {
        match task {
            Task::BinaryClassification => Metric::Auc,
            Task::MultiClassification { .. } => Metric::F1Macro,
            Task::Regression => Metric::Rmse,
        }
    }

    /// True when larger metric values are better.
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, Metric::Rmse)
    }

    /// Paper-style name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Auc => "AUC",
            Metric::F1Macro => "F1",
            Metric::Rmse => "RMSE",
        }
    }

    /// Compute the metric from labels and predictions.
    pub fn compute(&self, labels: &[f64], predictions: &[f64]) -> f64 {
        match self {
            Metric::Auc => auc(labels, predictions),
            Metric::F1Macro => f1_macro(labels, predictions),
            Metric::Rmse => rmse(labels, predictions),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The result of training on a train split and evaluating on a validation split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// The metric that was computed.
    pub metric: Metric,
    /// The metric value (AUC / F1 / RMSE).
    pub value: f64,
    /// A loss view of the value (negated when higher is better), so that search code can always
    /// minimise.
    pub loss: f64,
}

impl EvalResult {
    /// Wrap a metric value into an [`EvalResult`].
    pub fn from_value(metric: Metric, value: f64) -> EvalResult {
        let loss = if metric.higher_is_better() {
            -value
        } else {
            value
        };
        EvalResult {
            metric,
            value,
            loss,
        }
    }
}

/// Train `kind` on `train` and evaluate on `valid` with the task's conventional metric.
///
/// This is the oracle `L(A(D_train), D_valid)` of the paper's Problem 1: FeatAug's search loop
/// calls it once per candidate query.
pub fn evaluate(kind: ModelKind, train: &Dataset, valid: &Dataset) -> EvalResult {
    let metric = Metric::for_task(train.task);
    if train.is_empty() || valid.is_empty() {
        // Degenerate splits: return the metric's "uninformative" value.
        let value = match metric {
            Metric::Auc => 0.5,
            Metric::F1Macro => 0.0,
            Metric::Rmse => f64::INFINITY,
        };
        return EvalResult::from_value(metric, value);
    }
    let mut model = kind.build(train.task);
    model.fit(train);
    let preds = model.predict(&valid.x);
    EvalResult::from_value(metric, metric.compute(&valid.y, &preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Matrix;

    fn binary_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..n).map(|i| ((i % 10) > 4) as u8 as f64).collect();
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        )
    }

    #[test]
    fn model_kind_parse_and_name() {
        for kind in ModelKind::all() {
            assert_eq!(ModelKind::parse(kind.name()), Some(*kind));
        }
        assert_eq!(ModelKind::parse("xgb"), Some(ModelKind::GradientBoosting));
        assert_eq!(ModelKind::parse("???"), None);
        assert_eq!(ModelKind::all().len(), 4);
    }

    #[test]
    fn metric_for_task_and_direction() {
        assert_eq!(Metric::for_task(Task::BinaryClassification), Metric::Auc);
        assert_eq!(Metric::for_task(Task::Regression), Metric::Rmse);
        assert_eq!(
            Metric::for_task(Task::MultiClassification { n_classes: 3 }),
            Metric::F1Macro
        );
        assert!(Metric::Auc.higher_is_better());
        assert!(!Metric::Rmse.higher_is_better());
    }

    #[test]
    fn eval_result_loss_sign() {
        let r = EvalResult::from_value(Metric::Auc, 0.8);
        assert_eq!(r.loss, -0.8);
        let r = EvalResult::from_value(Metric::Rmse, 2.0);
        assert_eq!(r.loss, 2.0);
    }

    #[test]
    fn evaluate_every_model_kind_on_binary_task() {
        let data = binary_dataset(200);
        let (train, valid) = data.split2(0.7, 3);
        for kind in ModelKind::all() {
            let result = evaluate(*kind, &train, &valid);
            assert_eq!(result.metric, Metric::Auc);
            assert!(
                result.value > 0.8,
                "{} should separate an easy dataset, got {}",
                kind,
                result.value
            );
        }
    }

    #[test]
    fn evaluate_regression_uses_rmse() {
        let rows: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["x".into()],
            Task::Regression,
        );
        let (train, valid) = data.split2(0.7, 3);
        let result = evaluate(ModelKind::Linear, &train, &valid);
        assert_eq!(result.metric, Metric::Rmse);
        assert!(result.value < 1.0);
        assert_eq!(result.loss, result.value);
    }

    #[test]
    fn evaluate_empty_split_is_uninformative() {
        let data = binary_dataset(10);
        let empty = data.take(&[]);
        let r = evaluate(ModelKind::Linear, &data, &empty);
        assert_eq!(r.value, 0.5);
    }
}
