//! Random forests: bootstrap-aggregated CART trees with per-split feature subsampling.
//!
//! This is the paper's "RF" downstream model. Binary classification averages the trees'
//! positive-class probabilities, multi-class classification averages full class distributions,
//! and regression averages leaf means.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::{Dataset, Matrix, Task};
use crate::model::Model;
use crate::tree::{DecisionTree, SplitCriterion, TreeConfig};

/// Random-forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth configuration. `max_features` defaults to sqrt(n_features) when `None`.
    pub tree: TreeConfig,
    /// Bootstrap sample fraction.
    pub sample_fraction: f64,
    /// RNG seed (per-tree seeds are derived from it).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 30,
            tree: TreeConfig {
                max_depth: 8,
                ..TreeConfig::default()
            },
            sample_fraction: 1.0,
            seed: 42,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    cfg: ForestConfig,
    task: Task,
    trees: Vec<DecisionTree>,
    n_features: usize,
    fitted: bool,
}

impl RandomForest {
    /// Create an unfitted forest.
    pub fn new(cfg: ForestConfig) -> Self {
        RandomForest {
            cfg,
            task: Task::BinaryClassification,
            trees: Vec::new(),
            n_features: 0,
            fitted: false,
        }
    }

    /// Mean split-gain importance per feature, normalised to sum to 1 (all-zero when the forest
    /// never split).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for t in &self.trees {
            for (j, v) in t.feature_importances().iter().enumerate() {
                imp[j] += v;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    fn criterion(&self) -> SplitCriterion {
        match self.task {
            Task::Regression => SplitCriterion::Variance,
            Task::BinaryClassification => SplitCriterion::Gini { n_classes: 2 },
            Task::MultiClassification { n_classes } => SplitCriterion::Gini { n_classes },
        }
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(ForestConfig::default())
    }
}

impl Model for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        self.task = data.task;
        self.n_features = data.n_features();
        let mut train = data.clone();
        train.impute_mean();

        let mut tree_cfg = self.cfg.tree.clone();
        if tree_cfg.max_features.is_none() {
            let k = (data.n_features() as f64).sqrt().ceil() as usize;
            tree_cfg.max_features = Some(k.max(1));
        }

        self.trees.clear();
        let n = train.len();
        let sample_size = ((n as f64) * self.cfg.sample_fraction).round().max(1.0) as usize;
        for t in 0..self.cfg.n_trees {
            let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(t as u64));
            // Bootstrap sample with replacement.
            let indices: Vec<usize> = (0..sample_size).map(|_| rng.gen_range(0..n)).collect();
            let sub = train.take(&indices);
            let mut tree = DecisionTree::new(self.criterion(), tree_cfg.clone());
            tree.fit(&sub.x, &sub.y, &mut rng);
            self.trees.push(tree);
        }
        self.fitted = true;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "predict called before fit");
        let n = x.rows();
        match self.task {
            Task::Regression => {
                let mut out = vec![0.0; n];
                for tree in &self.trees {
                    for (o, p) in out.iter_mut().zip(tree.predict(x)) {
                        *o += p;
                    }
                }
                out.iter()
                    .map(|v| v / self.trees.len().max(1) as f64)
                    .collect()
            }
            Task::BinaryClassification => {
                let mut out = vec![0.0; n];
                for tree in &self.trees {
                    for (o, probs) in out.iter_mut().zip(tree.predict_proba(x)) {
                        *o += probs.get(1).copied().unwrap_or(0.0);
                    }
                }
                out.iter()
                    .map(|v| v / self.trees.len().max(1) as f64)
                    .collect()
            }
            Task::MultiClassification { n_classes } => {
                let mut probs = vec![vec![0.0; n_classes]; n];
                for tree in &self.trees {
                    for (acc, p) in probs.iter_mut().zip(tree.predict_proba(x)) {
                        for (a, v) in acc.iter_mut().zip(p) {
                            *a += v;
                        }
                    }
                }
                probs
                    .iter()
                    .map(|p| {
                        p.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(c, _)| c as f64)
                            .unwrap_or(0.0)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auc, rmse};

    fn xor_dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = (i % 20) as f64 / 20.0;
            let b = ((i / 20) % 15) as f64 / 15.0;
            rows.push(vec![a, b]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        )
    }

    #[test]
    fn forest_solves_xor_binary() {
        let data = xor_dataset();
        let mut rf = RandomForest::default();
        rf.fit(&data);
        let probs = rf.predict(&data.x);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        assert!(auc(&data.y, &probs) > 0.95);
    }

    #[test]
    fn forest_regression_fits_nonlinear_target() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0]).sin() * 3.0).collect();
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y.clone(),
            vec!["x".into()],
            Task::Regression,
        );
        let mut rf = RandomForest::default();
        rf.fit(&data);
        let preds = rf.predict(&data.x);
        assert!(rmse(&y, &preds) < 0.5, "rmse = {}", rmse(&y, &preds));
    }

    #[test]
    fn forest_multiclass_predicts_class_indices() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..240 {
            let c = i % 3;
            rows.push(vec![c as f64 * 5.0 + (i % 7) as f64 * 0.1, (i % 11) as f64]);
            y.push(c as f64);
        }
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y.clone(),
            vec!["x".into(), "noise".into()],
            Task::MultiClassification { n_classes: 3 },
        );
        let mut rf = RandomForest::default();
        rf.fit(&data);
        let preds = rf.predict(&data.x);
        assert!(preds.iter().all(|p| [0.0, 1.0, 2.0].contains(p)));
        assert!(accuracy(&y, &preds) > 0.9);
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let data = xor_dataset();
        let mut a = RandomForest::new(ForestConfig {
            n_trees: 5,
            ..ForestConfig::default()
        });
        let mut b = RandomForest::new(ForestConfig {
            n_trees: 5,
            ..ForestConfig::default()
        });
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(&data.x), b.predict(&data.x));
    }

    #[test]
    fn importances_sum_to_one_and_favor_signal() {
        let data = xor_dataset().with_feature("noise", &vec![1.0; 300]);
        let mut rf = RandomForest::default();
        rf.fit(&data);
        let imp = rf.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[2] < imp[0] && imp[2] < imp[1]);
    }
}
