//! CART decision trees.
//!
//! A single tree implementation serves three callers:
//!
//! * [`crate::forest::RandomForest`] — classification (gini) and regression (variance) trees with
//!   per-split random feature subsampling,
//! * [`crate::gbdt::GradientBoosting`] — second-order regression trees fitted to
//!   gradient/hessian statistics (XGBoost-style leaf weights `-G / (H + λ)`),
//! * the "FT + GBDT selector" baseline — via accumulated split-gain feature importances.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::dataset::Matrix;

/// What the tree optimises at each split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitCriterion {
    /// Variance reduction on a real-valued target (regression / boosting residuals).
    Variance,
    /// Gini impurity reduction on integer class labels.
    Gini {
        /// Number of classes.
        n_classes: usize,
    },
}

/// Tree growth hyperparameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of candidate features examined at each split (`None` = all features).
    pub max_features: Option<usize>,
    /// Number of candidate thresholds per feature (quantile-based).
    pub n_thresholds: usize,
    /// L2 regularisation on leaf weights (used by the second-order fit).
    pub lambda: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            n_thresholds: 16,
            lambda: 1.0,
        }
    }
}

/// A tree node: either an internal split or a leaf.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f64,
        class_probs: Vec<f64>,
    },
}

/// A fitted CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    cfg: TreeConfig,
    criterion: SplitCriterion,
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

/// Per-example statistics handed to the growing procedure.
struct GrowTarget<'a> {
    /// Regression target or class label.
    y: &'a [f64],
    /// Optional gradient/hessian pairs for second-order fitting.
    grad_hess: Option<(&'a [f64], &'a [f64])>,
}

impl DecisionTree {
    /// Create an unfitted tree.
    pub fn new(criterion: SplitCriterion, cfg: TreeConfig) -> Self {
        DecisionTree {
            cfg,
            criterion,
            nodes: Vec::new(),
            importances: Vec::new(),
        }
    }

    /// Fit on a plain target (class labels for [`SplitCriterion::Gini`], real targets for
    /// [`SplitCriterion::Variance`]). `rng` drives the per-split feature subsampling.
    pub fn fit(&mut self, x: &Matrix, y: &[f64], rng: &mut StdRng) {
        let indices: Vec<usize> = (0..x.rows()).collect();
        self.importances = vec![0.0; x.cols()];
        self.nodes.clear();
        let target = GrowTarget { y, grad_hess: None };
        self.grow(x, &target, indices, 0, rng);
    }

    /// Fit a second-order regression tree to gradients/hessians (XGBoost-style). Leaf values are
    /// `-G / (H + λ)`; split gain is the standard second-order gain.
    pub fn fit_grad_hess(&mut self, x: &Matrix, grad: &[f64], hess: &[f64], rng: &mut StdRng) {
        assert_eq!(grad.len(), hess.len());
        let indices: Vec<usize> = (0..x.rows()).collect();
        self.importances = vec![0.0; x.cols()];
        self.nodes.clear();
        let target = GrowTarget {
            y: grad,
            grad_hess: Some((grad, hess)),
        };
        self.grow(x, &target, indices, 0, rng);
    }

    /// Predicted value per row: leaf mean (regression), leaf weight (boosting) or majority class
    /// (classification).
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Per-class probabilities (classification trees only).
    pub fn predict_proba(&self, x: &Matrix) -> Vec<Vec<f64>> {
        (0..x.rows())
            .map(|i| self.leaf_of(x.row(i)).1.clone())
            .collect()
    }

    /// Accumulated split-gain importance per feature (unnormalised).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.leaf_of(row).0
    }

    fn leaf_of(&self, row: &[f64]) -> (f64, &Vec<f64>) {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value, class_probs } => return (*value, class_probs),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row[*feature];
                    // Missing values follow the left branch.
                    idx = if !v.is_finite() || v <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn leaf_value(&self, target: &GrowTarget<'_>, indices: &[usize]) -> (f64, Vec<f64>) {
        match (&self.criterion, target.grad_hess) {
            (_, Some((grad, hess))) => {
                let g: f64 = indices.iter().map(|&i| grad[i]).sum();
                let h: f64 = indices.iter().map(|&i| hess[i]).sum();
                (-g / (h + self.cfg.lambda), Vec::new())
            }
            (SplitCriterion::Variance, None) => {
                let mean =
                    indices.iter().map(|&i| target.y[i]).sum::<f64>() / indices.len().max(1) as f64;
                (mean, Vec::new())
            }
            (SplitCriterion::Gini { n_classes }, None) => {
                let mut counts = vec![0.0; *n_classes];
                for &i in indices {
                    let c = (target.y[i].round() as usize).min(n_classes - 1);
                    counts[c] += 1.0;
                }
                let total: f64 = counts.iter().sum();
                let probs: Vec<f64> = counts.iter().map(|c| c / total.max(1.0)).collect();
                let majority = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as f64)
                    .unwrap_or(0.0);
                (majority, probs)
            }
        }
    }

    /// Impurity of a set of rows under the configured criterion (lower is purer). For the
    /// second-order fit this is the negative gain term `-G² / (H + λ)`.
    fn impurity(&self, target: &GrowTarget<'_>, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        match (&self.criterion, target.grad_hess) {
            (_, Some((grad, hess))) => {
                let g: f64 = indices.iter().map(|&i| grad[i]).sum();
                let h: f64 = indices.iter().map(|&i| hess[i]).sum();
                -(g * g) / (h + self.cfg.lambda)
            }
            (SplitCriterion::Variance, None) => {
                let n = indices.len() as f64;
                let mean = indices.iter().map(|&i| target.y[i]).sum::<f64>() / n;
                indices
                    .iter()
                    .map(|&i| (target.y[i] - mean).powi(2))
                    .sum::<f64>()
            }
            (SplitCriterion::Gini { n_classes }, None) => {
                let mut counts = vec![0.0; *n_classes];
                for &i in indices {
                    let c = (target.y[i].round() as usize).min(n_classes - 1);
                    counts[c] += 1.0;
                }
                let n: f64 = counts.iter().sum();
                let gini = 1.0 - counts.iter().map(|c| (c / n) * (c / n)).sum::<f64>();
                gini * n
            }
        }
    }

    fn grow(
        &mut self,
        x: &Matrix,
        target: &GrowTarget<'_>,
        indices: Vec<usize>,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let make_leaf = |tree: &mut DecisionTree, indices: &[usize]| -> usize {
            let (value, class_probs) = tree.leaf_value(target, indices);
            tree.nodes.push(Node::Leaf { value, class_probs });
            tree.nodes.len() - 1
        };

        if depth >= self.cfg.max_depth
            || indices.len() < self.cfg.min_samples_split
            || indices.len() < 2 * self.cfg.min_samples_leaf
        {
            return make_leaf(self, &indices);
        }

        let parent_impurity = self.impurity(target, &indices);

        // Candidate features: all, or a random subset of `max_features`.
        let mut features: Vec<usize> = (0..x.cols()).collect();
        if let Some(k) = self.cfg.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(x.cols()));
        }

        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &f in &features {
            // Quantile-based candidate thresholds over the finite values of this feature.
            let mut vals: Vec<f64> = indices
                .iter()
                .map(|&i| x.get(i, f))
                .filter(|v| v.is_finite())
                .collect();
            if vals.len() < 2 {
                continue;
            }
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() as f64 / (self.cfg.n_thresholds + 1) as f64).max(1.0);
            let mut thresholds: Vec<f64> = Vec::new();
            let mut pos = step;
            while (pos as usize) < vals.len() {
                let a = vals[pos as usize - 1];
                let b = vals[pos as usize];
                thresholds.push((a + b) / 2.0);
                pos += step;
            }
            if thresholds.is_empty() {
                thresholds.push((vals[0] + vals[vals.len() - 1]) / 2.0);
            }

            for &t in &thresholds {
                let (mut left, mut right) = (Vec::new(), Vec::new());
                for &i in &indices {
                    let v = x.get(i, f);
                    if !v.is_finite() || v <= t {
                        left.push(i);
                    } else {
                        right.push(i);
                    }
                }
                if left.len() < self.cfg.min_samples_leaf || right.len() < self.cfg.min_samples_leaf
                {
                    continue;
                }
                let gain =
                    parent_impurity - self.impurity(target, &left) - self.impurity(target, &right);
                if gain > 1e-12 && best.as_ref().map(|(g, _, _)| gain > *g).unwrap_or(true) {
                    best = Some((gain, f, t));
                }
            }
        }

        match best {
            None => make_leaf(self, &indices),
            Some((gain, feature, threshold)) => {
                self.importances[feature] += gain;
                let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
                for &i in &indices {
                    let v = x.get(i, feature);
                    if !v.is_finite() || v <= threshold {
                        left_idx.push(i);
                    } else {
                        right_idx.push(i);
                    }
                }
                // Reserve the split node position, then grow children.
                self.nodes.push(Node::Leaf {
                    value: 0.0,
                    class_probs: Vec::new(),
                });
                let node_idx = self.nodes.len() - 1;
                let left = self.grow(x, target, left_idx, depth + 1, rng);
                let right = self.grow(x, target, right_idx, depth + 1, rng);
                self.nodes[node_idx] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node_idx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn xor_data() -> (Matrix, Vec<f64>) {
        // A non-linear pattern a linear model cannot fit: y = (x0 > 0.5) XOR (x1 > 0.5).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 20) as f64 / 20.0;
            let b = ((i / 20) % 10) as f64 / 10.0;
            rows.push(vec![a, b]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let x = Matrix::from_rows(&rows);
        let mut tree = DecisionTree::new(SplitCriterion::Variance, TreeConfig::default());
        tree.fit(&x, &y, &mut rng());
        let preds = tree.predict(&x);
        assert!((preds[0] - 1.0).abs() < 0.3);
        assert!((preds[99] - 5.0).abs() < 0.3);
    }

    #[test]
    fn classification_tree_solves_xor() {
        let (x, y) = xor_data();
        let mut tree =
            DecisionTree::new(SplitCriterion::Gini { n_classes: 2 }, TreeConfig::default());
        tree.fit(&x, &y, &mut rng());
        let preds = tree.predict(&x);
        let acc = preds
            .iter()
            .zip(&y)
            .filter(|(p, y)| (**p - **y).abs() < 0.5)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy = {acc}");
    }

    #[test]
    fn predict_proba_sums_to_one() {
        let (x, y) = xor_data();
        let mut tree =
            DecisionTree::new(SplitCriterion::Gini { n_classes: 2 }, TreeConfig::default());
        tree.fit(&x, &y, &mut rng());
        for p in tree.predict_proba(&x) {
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn grad_hess_tree_moves_towards_negative_gradient() {
        // Gradients all +1 on the left half, -1 on the right half; hessians 1.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let grad: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { -1.0 }).collect();
        let hess = vec![1.0; 100];
        let mut tree = DecisionTree::new(SplitCriterion::Variance, TreeConfig::default());
        tree.fit_grad_hess(&x, &grad, &hess, &mut rng());
        let preds = tree.predict(&x);
        // Leaf weight = -G/(H+1): left ≈ -50/51, right ≈ +50/51.
        assert!(preds[0] < -0.5);
        assert!(preds[99] > 0.5);
    }

    #[test]
    fn importances_prefer_informative_feature() {
        let (x, y) = xor_data();
        // Add a constant noise feature as column 2.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..x.rows() {
            let mut r = x.row(i).to_vec();
            r.push(0.0);
            rows.push(r);
        }
        let x2 = Matrix::from_rows(&rows);
        let mut tree =
            DecisionTree::new(SplitCriterion::Gini { n_classes: 2 }, TreeConfig::default());
        tree.fit(&x2, &y, &mut rng());
        let imp = tree.feature_importances();
        assert!(imp[0] > 0.0);
        assert!(imp[1] > 0.0);
        assert_eq!(imp[2], 0.0);
    }

    #[test]
    fn missing_values_go_left_without_panicking() {
        let rows = vec![vec![1.0], vec![2.0], vec![f64::NAN], vec![4.0]];
        let x = Matrix::from_rows(&rows);
        let y = vec![1.0, 1.0, 5.0, 5.0];
        let mut tree = DecisionTree::new(SplitCriterion::Variance, TreeConfig::default());
        tree.fit(&x, &y, &mut rng());
        let preds = tree.predict(&x);
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn max_depth_zero_yields_single_leaf() {
        let (x, y) = xor_data();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let mut tree = DecisionTree::new(SplitCriterion::Variance, cfg);
        tree.fit(&x, &y, &mut rng());
        let preds = tree.predict(&x);
        let first = preds[0];
        assert!(preds.iter().all(|&p| (p - first).abs() < 1e-12));
    }
}
