//! Feature matrices, labels and dataset splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The learning task of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Binary classification with labels in {0, 1}.
    BinaryClassification,
    /// Multi-class classification with labels in {0, .., n_classes − 1}.
    MultiClassification {
        /// Number of classes.
        n_classes: usize,
    },
    /// Regression with real-valued labels.
    Regression,
}

impl Task {
    /// True for (binary or multi-class) classification.
    pub fn is_classification(&self) -> bool {
        !matches!(self, Task::Regression)
    }

    /// Number of classes (1 for regression, 2 for binary).
    pub fn n_classes(&self) -> usize {
        match self {
            Task::BinaryClassification => 2,
            Task::MultiClassification { n_classes } => *n_classes,
            Task::Regression => 1,
        }
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Build from row-major data. Panics when `data.len() != rows * cols`.
    pub fn new(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { data, rows, cols }
    }

    /// A rows×cols matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a slice of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            data,
            rows: n_rows,
            cols: n_cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Value at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Set the value at (`row`, `col`).
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.cols + col] = value;
    }

    /// Column `j` copied into a vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Select a subset of rows (in order, duplicates allowed).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        }
    }

    /// Append a column, returning a new matrix.
    pub fn with_column(&self, col: &[f64]) -> Matrix {
        assert_eq!(col.len(), self.rows, "column length mismatch");
        let mut data = Vec::with_capacity(self.rows * (self.cols + 1));
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.push(col[i]);
        }
        Matrix {
            data,
            rows: self.rows,
            cols: self.cols + 1,
        }
    }
}

/// A labelled dataset: features, labels, feature names and a task type.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, one row per example.
    pub x: Matrix,
    /// Labels (class index for classification, target for regression).
    pub y: Vec<f64>,
    /// Feature names (same order as matrix columns).
    pub feature_names: Vec<String>,
    /// The learning task.
    pub task: Task,
}

impl Dataset {
    /// Build a dataset, checking that shapes agree.
    pub fn new(x: Matrix, y: Vec<f64>, feature_names: Vec<String>, task: Task) -> Self {
        assert_eq!(x.rows(), y.len(), "labels must match matrix rows");
        assert_eq!(
            x.cols(),
            feature_names.len(),
            "names must match matrix columns"
        );
        Dataset {
            x,
            y,
            feature_names,
            task,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Subset of rows.
    pub fn take(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.take_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
            task: self.task,
        }
    }

    /// Append a feature column (e.g. a freshly generated FeatAug feature).
    pub fn with_feature(&self, name: impl Into<String>, values: &[f64]) -> Dataset {
        let mut names = self.feature_names.clone();
        names.push(name.into());
        Dataset {
            x: self.x.with_column(values),
            y: self.y.clone(),
            feature_names: names,
            task: self.task,
        }
    }

    /// Deterministic shuffled split into (train, valid, test) with the given fractions
    /// (test gets the remainder). Fractions must sum to at most 1.
    pub fn split3(&self, train: f64, valid: f64, seed: u64) -> (Dataset, Dataset, Dataset) {
        assert!(train + valid <= 1.0 + 1e-9, "fractions exceed 1");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let n_train = (self.len() as f64 * train).round() as usize;
        let n_valid = (self.len() as f64 * valid).round() as usize;
        let n_train = n_train.min(self.len());
        let n_valid = n_valid.min(self.len() - n_train);
        let train_idx = &indices[..n_train];
        let valid_idx = &indices[n_train..n_train + n_valid];
        let test_idx = &indices[n_train + n_valid..];
        (
            self.take(train_idx),
            self.take(valid_idx),
            self.take(test_idx),
        )
    }

    /// Deterministic shuffled (train, valid) split.
    pub fn split2(&self, train: f64, seed: u64) -> (Dataset, Dataset) {
        let (a, b, c) = self.split3(train, 1.0 - train, seed);
        debug_assert_eq!(c.len(), 0);
        (a, b)
    }

    /// Replace non-finite feature values with per-column means computed over finite entries
    /// (columns that are entirely non-finite become 0). Returns the per-column means used,
    /// so validation/test data can be imputed consistently via [`Dataset::impute_with`].
    pub fn impute_mean(&mut self) -> Vec<f64> {
        let cols = self.x.cols();
        let mut means = vec![0.0; cols];
        for j in 0..cols {
            let col = self.x.column(j);
            let finite: Vec<f64> = col.iter().copied().filter(|v| v.is_finite()).collect();
            let mean = if finite.is_empty() {
                0.0
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            };
            means[j] = mean;
        }
        self.impute_with(&means);
        means
    }

    /// Replace non-finite feature values with the provided per-column fill values.
    pub fn impute_with(&mut self, fill: &[f64]) {
        assert_eq!(fill.len(), self.x.cols());
        for i in 0..self.x.rows() {
            for j in 0..self.x.cols() {
                if !self.x.get(i, j).is_finite() {
                    self.x.set(i, j, fill[j]);
                }
            }
        }
    }

    /// Standardise features to zero mean / unit variance, returning the (mean, std) pairs so
    /// other splits can be transformed consistently via [`Dataset::standardize_with`].
    pub fn standardize(&mut self) -> Vec<(f64, f64)> {
        let cols = self.x.cols();
        let rows = self.x.rows();
        let mut stats = Vec::with_capacity(cols);
        for j in 0..cols {
            let col = self.x.column(j);
            let mean = col.iter().sum::<f64>() / rows.max(1) as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / rows.max(1) as f64;
            let std = var.sqrt().max(1e-12);
            stats.push((mean, std));
        }
        self.standardize_with(&stats);
        stats
    }

    /// Apply a previously computed standardisation.
    pub fn standardize_with(&mut self, stats: &[(f64, f64)]) {
        assert_eq!(stats.len(), self.x.cols());
        for i in 0..self.x.rows() {
            for j in 0..self.x.cols() {
                let (mean, std) = stats[j];
                let v = (self.x.get(i, j) - mean) / std;
                self.x.set(i, j, v);
            }
        }
    }

    /// Fraction of examples with the positive label (binary classification sanity check).
    pub fn positive_rate(&self) -> f64 {
        if self.y.is_empty() {
            return 0.0;
        }
        self.y.iter().filter(|&&y| y > 0.5).count() as f64 / self.y.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        )
    }

    #[test]
    fn matrix_basics() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
        let taken = m.take_rows(&[1, 1]);
        assert_eq!(taken.rows(), 2);
        assert_eq!(taken.get(0, 1), 4.0);
        let wider = m.with_column(&[9.0, 8.0]);
        assert_eq!(wider.cols(), 3);
        assert_eq!(wider.get(0, 2), 9.0);
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn matrix_shape_checked() {
        let _ = Matrix::new(vec![1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    fn split3_partitions_all_rows() {
        let d = toy(100);
        let (tr, va, te) = d.split3(0.6, 0.2, 7);
        assert_eq!(tr.len() + va.len() + te.len(), 100);
        assert_eq!(tr.len(), 60);
        assert_eq!(va.len(), 20);
        // Deterministic given the seed.
        let (tr2, _, _) = d.split3(0.6, 0.2, 7);
        assert_eq!(tr.y, tr2.y);
        // Different seed shuffles differently (overwhelmingly likely).
        let (tr3, _, _) = d.split3(0.6, 0.2, 8);
        assert_ne!(tr.x, tr3.x);
    }

    #[test]
    fn with_feature_appends_column() {
        let d = toy(4);
        let d2 = d.with_feature("new", &[9.0, 9.0, 9.0, 9.0]);
        assert_eq!(d2.n_features(), 3);
        assert_eq!(d2.feature_names.last().unwrap(), "new");
        assert_eq!(d2.x.get(2, 2), 9.0);
    }

    #[test]
    fn impute_replaces_non_finite() {
        let mut d = Dataset::new(
            Matrix::from_rows(&[vec![1.0, f64::NAN], vec![3.0, 4.0]]),
            vec![0.0, 1.0],
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        );
        let means = d.impute_mean();
        assert_eq!(means, vec![2.0, 4.0]);
        assert_eq!(d.x.get(0, 1), 4.0);
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let mut d = toy(50);
        d.standardize();
        for j in 0..d.n_features() {
            let col = d.x.column(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn task_helpers() {
        assert!(Task::BinaryClassification.is_classification());
        assert!(!Task::Regression.is_classification());
        assert_eq!(Task::MultiClassification { n_classes: 4 }.n_classes(), 4);
        assert_eq!(Task::Regression.n_classes(), 1);
    }

    #[test]
    fn positive_rate() {
        let d = toy(10);
        assert!((d.positive_rate() - 0.5).abs() < 1e-9);
    }
}
