//! DeepFM-lite: a factorization machine combined with a small MLP head.
//!
//! The paper evaluates DeepFM as its deep downstream model. This implementation keeps the two
//! defining ingredients — a second-order factorization-machine interaction term and a deep
//! component sharing the same input — on dense (standardised) features, trained with
//! mini-batch SGD. Binary classification uses a sigmoid output and log-loss; regression an
//! identity output and squared loss.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::{Dataset, Matrix, Task};
use crate::metrics::sigmoid;
use crate::model::Model;

/// DeepFM hyperparameters.
#[derive(Debug, Clone)]
pub struct DeepFmConfig {
    /// Dimension of the factorization-machine embedding vectors.
    pub embedding_dim: usize,
    /// Width of the hidden MLP layer.
    pub hidden_dim: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    /// RNG seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for DeepFmConfig {
    fn default() -> Self {
        DeepFmConfig {
            embedding_dim: 8,
            hidden_dim: 16,
            learning_rate: 0.05,
            epochs: 30,
            batch_size: 32,
            l2: 1e-5,
            seed: 42,
        }
    }
}

/// A fitted DeepFM-lite model.
#[derive(Debug, Clone)]
pub struct DeepFm {
    cfg: DeepFmConfig,
    task: Task,
    // FM part
    w0: f64,
    w: Vec<f64>,
    /// Embeddings `v[i][f]`, flattened row-major as `v[i * k + f]`.
    v: Vec<f64>,
    // Deep part: one hidden layer
    w1: Vec<f64>, // hidden_dim x n_features
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden_dim
    b2: f64,
    n_features: usize,
    scaler: Vec<(f64, f64)>,
    fitted: bool,
}

impl DeepFm {
    /// Create an unfitted model.
    pub fn new(cfg: DeepFmConfig) -> Self {
        DeepFm {
            cfg,
            task: Task::BinaryClassification,
            w0: 0.0,
            w: Vec::new(),
            v: Vec::new(),
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            n_features: 0,
            scaler: Vec::new(),
            fitted: false,
        }
    }

    /// Forward pass on one (already standardised) row. Returns
    /// (raw output, hidden activations, per-factor sums) so the backward pass can reuse them.
    fn forward(&self, row: &[f64]) -> (f64, Vec<f64>, Vec<f64>) {
        let d = self.n_features;
        let k = self.cfg.embedding_dim;
        // FM first order
        let mut out = self.w0;
        for j in 0..d {
            out += self.w[j] * row[j];
        }
        // FM second order: 0.5 * sum_f [ (sum_i v_if x_i)^2 - sum_i (v_if x_i)^2 ]
        let mut factor_sums = vec![0.0; k];
        for f in 0..k {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for j in 0..d {
                let t = self.v[j * k + f] * row[j];
                s += t;
                s2 += t * t;
            }
            factor_sums[f] = s;
            out += 0.5 * (s * s - s2);
        }
        // Deep part
        let h = self.cfg.hidden_dim;
        let mut hidden = vec![0.0; h];
        for u in 0..h {
            let mut z = self.b1[u];
            for j in 0..d {
                z += self.w1[u * d + j] * row[j];
            }
            hidden[u] = z.max(0.0); // ReLU
        }
        for u in 0..h {
            out += self.w2[u] * hidden[u];
        }
        out += self.b2;
        (out, hidden, factor_sums)
    }

    fn standardize_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(j, &v)| {
                let (mean, std) = self.scaler[j];
                if v.is_finite() {
                    ((v - mean) / std).clamp(-10.0, 10.0)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

impl Default for DeepFm {
    fn default() -> Self {
        Self::new(DeepFmConfig::default())
    }
}

impl Model for DeepFm {
    fn fit(&mut self, data: &Dataset) {
        self.task = data.task;
        self.n_features = data.n_features();
        let mut train = data.clone();
        train.impute_mean();
        self.scaler = train.standardize();

        let d = self.n_features;
        let k = self.cfg.embedding_dim;
        let h = self.cfg.hidden_dim;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let init = |scale: f64, rng: &mut StdRng| rng.gen_range(-scale..scale);

        self.w0 = 0.0;
        self.w = vec![0.0; d];
        self.v = (0..d * k).map(|_| init(0.05, &mut rng)).collect();
        self.w1 = (0..h * d)
            .map(|_| init((2.0 / d as f64).sqrt(), &mut rng))
            .collect();
        self.b1 = vec![0.0; h];
        self.w2 = (0..h)
            .map(|_| init((2.0 / h as f64).sqrt(), &mut rng))
            .collect();
        self.b2 = 0.0;

        // For regression, centre the target so the network only learns deviations.
        let y_offset = if matches!(self.task, Task::Regression) {
            train.y.iter().sum::<f64>() / train.len().max(1) as f64
        } else {
            0.0
        };
        self.fitted = true; // forward() may now be used internally

        let n = train.len();
        let lr = self.cfg.learning_rate;
        let binary = !matches!(self.task, Task::Regression);
        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..self.cfg.epochs {
            // deterministic shuffle per epoch
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let raw_row = train.x.row(i);
                let row: Vec<f64> = raw_row
                    .iter()
                    .map(|&v| if v.is_finite() { v } else { 0.0 })
                    .collect();
                let (out, hidden, factor_sums) = self.forward(&row);
                let target = if binary {
                    train.y[i]
                } else {
                    train.y[i] - y_offset
                };
                // dL/dout
                let grad_out = if binary {
                    sigmoid(out) - target
                } else {
                    out - target
                };
                let g = grad_out.clamp(-5.0, 5.0);

                // FM gradients
                self.w0 -= lr * g;
                for j in 0..d {
                    self.w[j] -= lr * (g * row[j] + self.cfg.l2 * self.w[j]);
                }
                for f in 0..k {
                    for j in 0..d {
                        let vjf = self.v[j * k + f];
                        let grad_v = row[j] * factor_sums[f] - vjf * row[j] * row[j];
                        self.v[j * k + f] -= lr * (g * grad_v + self.cfg.l2 * vjf);
                    }
                }
                // Deep gradients
                for u in 0..h {
                    let grad_w2 = g * hidden[u];
                    let relu_grad = if hidden[u] > 0.0 { 1.0 } else { 0.0 };
                    let grad_hidden = g * self.w2[u] * relu_grad;
                    self.w2[u] -= lr * (grad_w2 + self.cfg.l2 * self.w2[u]);
                    for j in 0..d {
                        self.w1[u * d + j] -=
                            lr * (grad_hidden * row[j] + self.cfg.l2 * self.w1[u * d + j]);
                    }
                    self.b1[u] -= lr * grad_hidden;
                }
                self.b2 -= lr * g;
            }
        }
        // Store the regression offset in w0 so predict() is self-contained.
        if matches!(self.task, Task::Regression) {
            self.w0 += y_offset;
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "predict called before fit");
        (0..x.rows())
            .map(|i| {
                let row = self.standardize_row(x.row(i));
                let (out, _, _) = self.forward(&row);
                match self.task {
                    Task::Regression => out,
                    _ => sigmoid(out),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{auc, rmse};

    fn interaction_dataset() -> Dataset {
        // Label depends on the *product* of two features — exactly what the FM term captures.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = ((i % 20) as f64 / 10.0) - 1.0;
            let b = (((i / 20) % 20) as f64 / 10.0) - 1.0;
            rows.push(vec![a, b]);
            y.push(if a * b > 0.0 { 1.0 } else { 0.0 });
        }
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        )
    }

    #[test]
    fn deepfm_learns_multiplicative_interaction() {
        let data = interaction_dataset();
        let mut model = DeepFm::default();
        model.fit(&data);
        let probs = model.predict(&data.x);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        let score = auc(&data.y, &probs);
        assert!(score > 0.9, "auc = {score}");
    }

    #[test]
    fn deepfm_regression_tracks_target_scale() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 10) as f64, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 10.0).collect();
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            y.clone(),
            vec!["a".into(), "b".into()],
            Task::Regression,
        );
        let mut model = DeepFm::default();
        model.fit(&data);
        let preds = model.predict(&data.x);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let baseline = rmse(&y, &vec![mean; y.len()]);
        assert!(
            rmse(&y, &preds) < baseline,
            "rmse {} vs baseline {}",
            rmse(&y, &preds),
            baseline
        );
    }

    #[test]
    fn deepfm_deterministic_given_seed() {
        let data = interaction_dataset();
        let mut a = DeepFm::default();
        let mut b = DeepFm::default();
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(&data.x), b.predict(&data.x));
    }

    #[test]
    fn deepfm_handles_non_finite_inputs() {
        let rows = vec![
            vec![1.0, f64::NAN],
            vec![0.5, 2.0],
            vec![0.0, 1.0],
            vec![1.5, 0.5],
        ];
        let data = Dataset::new(
            Matrix::from_rows(&rows),
            vec![1.0, 0.0, 0.0, 1.0],
            vec!["a".into(), "b".into()],
            Task::BinaryClassification,
        );
        let mut model = DeepFm::new(DeepFmConfig {
            epochs: 5,
            ..DeepFmConfig::default()
        });
        model.fit(&data);
        let preds = model.predict(&data.x);
        assert!(preds.iter().all(|p| p.is_finite()));
    }
}
