//! # feataug-featuretools
//!
//! A Deep Feature Synthesis (DFS) baseline in the style of Featuretools (Kanter &
//! Veeramachaneni, DSAA 2015) — the system the FeatAug paper compares against.
//!
//! Featuretools augments a training table by materialising **every** predicate-free group-by
//! aggregation query over the relevant table:
//!
//! ```sql
//! SELECT k, agg(a) AS feature FROM R GROUP BY k
//! ```
//!
//! for each aggregation function `agg` and each aggregatable attribute `a`. No `WHERE` clause is
//! ever considered, and no feature selection happens during generation — which is precisely the
//! limitation FeatAug addresses. This crate provides the enumeration
//! ([`enumerate_features`]), the materialisation ([`synthesize`], [`materialize_features`]) and
//! the bookkeeping the comparison experiments need.

pub mod dfs;

pub use dfs::{enumerate_features, materialize_features, synthesize, DfsConfig, DfsFeature};
