//! Deep Feature Synthesis: enumerate and materialise predicate-free aggregation features.

use feataug_tabular::groupby::group_by_aggregate_multi;
use feataug_tabular::join::left_join;
use feataug_tabular::{AggFunc, DataType, Table};

/// Configuration of the DFS enumeration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Aggregation functions to apply (defaults to the paper's full 15-function set).
    pub agg_funcs: Vec<AggFunc>,
    /// Upper bound on the number of generated features (`None` = all combinations).
    pub max_features: Option<usize>,
    /// Skip numeric aggregations (everything except COUNT / COUNT_DISTINCT / MODE / ENTROPY) on
    /// categorical columns. Featuretools makes the same distinction between numeric and
    /// categorical primitives.
    pub respect_types: bool,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            agg_funcs: AggFunc::all().to_vec(),
            max_features: None,
            respect_types: true,
        }
    }
}

/// One DFS feature: `agg(column)` grouped by the foreign key.
#[derive(Debug, Clone, PartialEq)]
pub struct DfsFeature {
    /// Aggregation function.
    pub agg: AggFunc,
    /// Aggregated column of the relevant table.
    pub column: String,
    /// Output column name, e.g. `SUM(pprice)`.
    pub name: String,
}

impl DfsFeature {
    /// Build a feature and derive its display name.
    pub fn new(agg: AggFunc, column: impl Into<String>) -> DfsFeature {
        let column = column.into();
        let name = format!("{}({})", agg.name(), column);
        DfsFeature { agg, column, name }
    }

    /// The SQL text of the query this feature corresponds to (for reports / debugging).
    pub fn to_sql(&self, relevant: &str, keys: &[&str]) -> String {
        format!(
            "SELECT {k}, {agg}({col}) AS \"{name}\" FROM {relevant} GROUP BY {k}",
            k = keys.join(", "),
            agg = self.agg.name(),
            col = self.column,
            name = self.name,
        )
    }
}

/// True when `agg` is meaningful on a categorical column (frequency-style aggregations).
fn agg_applies_to_categorical(agg: AggFunc) -> bool {
    matches!(
        agg,
        AggFunc::Count | AggFunc::CountDistinct | AggFunc::Mode | AggFunc::Entropy
    )
}

/// Enumerate every DFS feature over `agg_columns` of the relevant table.
///
/// The enumeration order is deterministic: aggregation functions in paper order, columns in the
/// given order — so `max_features` truncation is reproducible.
pub fn enumerate_features(
    relevant: &Table,
    agg_columns: &[&str],
    cfg: &DfsConfig,
) -> Vec<DfsFeature> {
    let mut out = Vec::new();
    for &col in agg_columns {
        let dtype = relevant.dtype(col).ok();
        for &agg in &cfg.agg_funcs {
            if cfg.respect_types {
                if let Some(DataType::Categorical) = dtype {
                    if !agg_applies_to_categorical(agg) {
                        continue;
                    }
                }
            }
            out.push(DfsFeature::new(agg, col));
            if let Some(max) = cfg.max_features {
                if out.len() >= max {
                    return out;
                }
            }
        }
    }
    out
}

/// Materialise `features` into a per-key feature table
/// (`key columns` + one column per feature), computed in a single pass over the relevant table.
pub fn materialize_features(
    relevant: &Table,
    keys: &[&str],
    features: &[DfsFeature],
) -> feataug_tabular::Result<Table> {
    let specs: Vec<(AggFunc, &str, &str)> = features
        .iter()
        .map(|f| (f.agg, f.column.as_str(), f.name.as_str()))
        .collect();
    group_by_aggregate_multi(relevant, keys, &specs)
}

/// Full DFS: enumerate features, materialise them, and left-join them onto the training table.
/// Returns the augmented training table and the list of generated features.
pub fn synthesize(
    train: &Table,
    relevant: &Table,
    keys: &[&str],
    agg_columns: &[&str],
    cfg: &DfsConfig,
) -> feataug_tabular::Result<(Table, Vec<DfsFeature>)> {
    let features = enumerate_features(relevant, agg_columns, cfg);
    if features.is_empty() {
        return Ok((train.clone(), features));
    }
    let feature_table = materialize_features(relevant, keys, &features)?;
    let augmented = left_join(train, &feature_table, keys, keys)?;
    Ok((augmented, features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_datagen::{tmall, GenConfig};
    use feataug_tabular::{Column, Value};

    fn toy() -> (Table, Table) {
        let mut train = Table::new("train");
        train
            .add_column("k", Column::from_strs(&["a", "b", "c"]))
            .unwrap();
        train
            .add_column("label", Column::from_i64s(&[1, 0, 1]))
            .unwrap();
        let mut relevant = Table::new("rel");
        relevant
            .add_column("k", Column::from_strs(&["a", "a", "b"]))
            .unwrap();
        relevant
            .add_column("x", Column::from_f64s(&[1.0, 3.0, 10.0]))
            .unwrap();
        relevant
            .add_column("cat", Column::from_strs(&["p", "q", "p"]))
            .unwrap();
        (train, relevant)
    }

    #[test]
    fn enumerate_respects_types_and_order() {
        let (_, relevant) = toy();
        let cfg = DfsConfig::default();
        let feats = enumerate_features(&relevant, &["x", "cat"], &cfg);
        // x gets all 15 functions; cat only the 4 frequency-style ones.
        assert_eq!(feats.len(), 15 + 4);
        assert_eq!(feats[0].name, "SUM(x)");
        assert!(feats.iter().any(|f| f.name == "COUNT_DISTINCT(cat)"));
        assert!(!feats.iter().any(|f| f.name == "AVG(cat)"));
    }

    #[test]
    fn enumerate_without_type_respect_includes_everything() {
        let (_, relevant) = toy();
        let cfg = DfsConfig {
            respect_types: false,
            ..DfsConfig::default()
        };
        let feats = enumerate_features(&relevant, &["x", "cat"], &cfg);
        assert_eq!(feats.len(), 30);
    }

    #[test]
    fn max_features_truncates_deterministically() {
        let (_, relevant) = toy();
        let cfg = DfsConfig {
            max_features: Some(7),
            ..DfsConfig::default()
        };
        let feats = enumerate_features(&relevant, &["x"], &cfg);
        assert_eq!(feats.len(), 7);
        assert_eq!(feats[0].name, "SUM(x)");
    }

    #[test]
    fn synthesize_attaches_features_with_nulls_for_unmatched() {
        let (train, relevant) = toy();
        let cfg = DfsConfig {
            agg_funcs: vec![AggFunc::Sum, AggFunc::Count],
            ..DfsConfig::default()
        };
        let (augmented, feats) = synthesize(&train, &relevant, &["k"], &["x"], &cfg).unwrap();
        assert_eq!(feats.len(), 2);
        assert_eq!(augmented.num_rows(), 3);
        assert_eq!(augmented.value(0, "SUM(x)").unwrap(), Value::Float(4.0));
        assert_eq!(augmented.value(1, "SUM(x)").unwrap(), Value::Float(10.0));
        // "c" has no relevant rows -> NULL.
        assert_eq!(augmented.value(2, "SUM(x)").unwrap(), Value::Null);
    }

    #[test]
    fn to_sql_renders_query() {
        let f = DfsFeature::new(AggFunc::Avg, "pprice");
        let sql = f.to_sql("user_logs", &["cname"]);
        assert_eq!(
            sql,
            "SELECT cname, AVG(pprice) AS \"AVG(pprice)\" FROM user_logs GROUP BY cname"
        );
    }

    #[test]
    fn works_on_generated_dataset() {
        let ds = tmall::generate(&GenConfig::tiny());
        let keys: Vec<&str> = ds.key_columns.iter().map(|s| s.as_str()).collect();
        let aggs: Vec<&str> = ds.agg_columns.iter().map(|s| s.as_str()).collect();
        let cfg = DfsConfig {
            agg_funcs: vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count],
            ..DfsConfig::default()
        };
        let (augmented, feats) = synthesize(&ds.train, &ds.relevant, &keys, &aggs, &cfg).unwrap();
        assert_eq!(augmented.num_rows(), ds.train.num_rows());
        assert_eq!(
            augmented.num_columns(),
            ds.train.num_columns() + feats.len()
        );
    }

    #[test]
    fn empty_feature_list_returns_training_table() {
        let (train, relevant) = toy();
        let cfg = DfsConfig {
            agg_funcs: vec![],
            ..DfsConfig::default()
        };
        let (augmented, feats) = synthesize(&train, &relevant, &["k"], &["x"], &cfg).unwrap();
        assert!(feats.is_empty());
        assert_eq!(augmented, train);
    }
}
