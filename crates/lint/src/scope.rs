//! Per-file scope model built on top of the lexer.
//!
//! Resolves the structure the lints need: matched braces, `#[cfg(test)]` /
//! `#[test]` regions (panic-discipline and catch-unwind do not apply to test
//! code), function boundaries (for hot-path and per-function lock-order
//! analysis), `// lint: hot-path` markers, and the suppression grammar
//! `// lint: allow(<name>): <reason>`.

use crate::lexer::{lex, Comment, Tok, Token};

/// A function item: its name, source line, and token range of its body.
#[derive(Debug)]
pub struct Function {
    pub name: String,
    pub line: u32,
    /// Token indices of the `{` and `}` delimiting the body, if it has one
    /// (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// Marked with `// lint: hot-path` immediately above the item.
    pub hot: bool,
}

/// A parsed `// lint: allow(<name>): <reason>` suppression.
#[derive(Debug)]
pub struct Allow {
    pub line: u32,
    pub name: String,
    pub reason: String,
}

/// Everything the lints need to know about one file.
pub struct FileModel<'a> {
    pub tokens: Vec<Token<'a>>,
    pub comments: Vec<Comment>,
    /// For each token index, the index of its matching brace partner
    /// (`{` → `}` and vice versa); `usize::MAX` when not a brace/unbalanced.
    brace_match: Vec<usize>,
    /// Token ranges `[open, close]` of test-only code.
    pub test_regions: Vec<(usize, usize)>,
    pub functions: Vec<Function>,
    pub allows: Vec<Allow>,
    /// Lines carrying a malformed `// lint:` directive (reported as findings).
    pub directive_errors: Vec<(u32, String)>,
}

impl<'a> FileModel<'a> {
    pub fn parse(src: &'a str) -> FileModel<'a> {
        let lexed = lex(src);
        let tokens = lexed.tokens;
        let comments = lexed.comments;

        let brace_match = match_braces(&tokens);
        let test_regions = find_test_regions(&tokens, &brace_match);
        let (allows, hot_lines, directive_errors) = parse_directives(&comments);
        let functions = find_functions(&tokens, &brace_match, &hot_lines);

        FileModel {
            tokens,
            comments,
            brace_match,
            test_regions,
            functions,
            allows,
            directive_errors,
        }
    }

    /// Is the token at `idx` inside test-only code?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(open, close)| idx > open && idx < close)
    }

    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| matches!(f.body, Some((open, close)) if idx > open && idx < close))
            .min_by_key(|f| match f.body {
                Some((open, close)) => close - open,
                None => usize::MAX,
            })
    }

    /// Matching partner of the brace token at `idx`, if balanced.
    pub fn brace_partner(&self, idx: usize) -> Option<usize> {
        match self.brace_match.get(idx) {
            Some(&m) if m != usize::MAX => Some(m),
            _ => None,
        }
    }

    /// Is a finding of `lint` (or one of its aliases) at `line` suppressed by
    /// an `allow` on the same line or the line directly above?
    pub fn suppressed(&self, lint: &str, aliases: &[&str], line: u32) -> bool {
        self.allows.iter().any(|a| {
            (a.line == line || a.line + 1 == line)
                && (a.name == lint || aliases.contains(&a.name.as_str()))
        })
    }
}

fn match_braces(tokens: &[Token<'_>]) -> Vec<usize> {
    let mut out = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.tok {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                if let Some(open) = stack.pop() {
                    out[open] = i;
                    out[i] = open;
                }
            }
            _ => {}
        }
    }
    out
}

fn is_word(tokens: &[Token<'_>], i: usize, w: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Word(x)) if *x == w)
}

fn is_punct(tokens: &[Token<'_>], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(x)) if *x == c)
}

/// Find `#[cfg(test)]` (attached to any item) and `#[test]` regions: the token
/// range of the braces of the item that follows the attribute.
fn find_test_regions(tokens: &[Token<'_>], brace_match: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let cfg_test = is_punct(tokens, i, '#')
            && is_punct(tokens, i + 1, '[')
            && is_word(tokens, i + 2, "cfg")
            && is_punct(tokens, i + 3, '(')
            && is_word(tokens, i + 4, "test")
            && is_punct(tokens, i + 5, ')')
            && is_punct(tokens, i + 6, ']');
        let test_attr = is_punct(tokens, i, '#')
            && is_punct(tokens, i + 1, '[')
            && is_word(tokens, i + 2, "test")
            && is_punct(tokens, i + 3, ']');
        if cfg_test || test_attr {
            // The attributed item's body is the next top-level `{ … }`.
            let mut j = i + if cfg_test { 7 } else { 4 };
            while j < tokens.len() && !is_punct(tokens, j, '{') {
                // A `;` before any `{` means the item has no body
                // (e.g. `#[cfg(test)] mod tests;`).
                if is_punct(tokens, j, ';') {
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && is_punct(tokens, j, '{') && brace_match[j] != usize::MAX {
                regions.push((j, brace_match[j]));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Find `fn name … { body }` items and mark the hot ones.
fn find_functions(tokens: &[Token<'_>], brace_match: &[usize], hot_lines: &[u32]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if is_word(tokens, i, "fn") {
            if let Some(Tok::Word(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                let line = tokens[i].line;
                // Body = first `{` before any item-terminating `;`.
                let mut j = i + 2;
                let mut body = None;
                while j < tokens.len() {
                    match tokens[j].tok {
                        Tok::Punct('{') => {
                            if brace_match[j] != usize::MAX {
                                body = Some((j, brace_match[j]));
                            }
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                out.push(Function {
                    name: name.to_string(),
                    line,
                    body,
                    hot: false,
                });
            }
        }
        i += 1;
    }
    // Each `// lint: hot-path` marker arms exactly one function: the first
    // `fn` at or below it, within an 8-line window (room for doc comments and
    // attributes between marker and item).
    for &m in hot_lines {
        if let Some(f) = out
            .iter_mut()
            .filter(|f| f.line >= m && f.line - m <= 8)
            .min_by_key(|f| f.line)
        {
            f.hot = true;
        }
    }
    out
}

/// Parse `lint:` directives out of the comment list. Returns the allows, the
/// hot-path marker lines, and malformed-directive errors.
fn parse_directives(comments: &[Comment]) -> (Vec<Allow>, Vec<u32>, Vec<(u32, String)>) {
    let mut allows = Vec::new();
    let mut hot = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        let Some(rest) = c.text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot-path" {
            hot.push(c.line);
            continue;
        }
        if let Some(inner) = rest.strip_prefix("allow(") {
            let Some(close) = inner.find(')') else {
                errors.push((c.line, "unclosed `allow(` directive".to_string()));
                continue;
            };
            let name = inner[..close].trim().to_string();
            let tail = inner[close + 1..].trim();
            let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
            if name.is_empty() {
                errors.push((c.line, "empty lint name in `allow(...)`".to_string()));
            } else if reason.is_empty() {
                errors.push((
                    c.line,
                    format!("suppression needs a reason: `// lint: allow({name}): <why>`"),
                ));
            } else {
                allows.push(Allow {
                    line: c.line,
                    name,
                    reason: reason.to_string(),
                });
            }
            continue;
        }
        errors.push((
            c.line,
            format!("unknown `lint:` directive `{rest}` (expected `hot-path` or `allow(<name>): <reason>`)"),
        ));
    }
    (allows, hot, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_mod() {
        let src = "fn a() { x(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y(); }\n}\n";
        let m = FileModel::parse(src);
        assert_eq!(m.test_regions.len(), 1);
        let y_idx = m
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Word(w) if *w == "y"))
            .unwrap();
        assert!(m.in_test(y_idx));
        let x_idx = m
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Word(w) if *w == "x"))
            .unwrap();
        assert!(!m.in_test(x_idx));
    }

    #[test]
    fn hot_marker_attaches_to_next_fn() {
        let src = "// lint: hot-path\n#[inline]\nfn fast() {}\n\nfn slow() {}\n";
        let m = FileModel::parse(src);
        let fast = m.functions.iter().find(|f| f.name == "fast").unwrap();
        let slow = m.functions.iter().find(|f| f.name == "slow").unwrap();
        assert!(fast.hot);
        assert!(!slow.hot);
    }

    #[test]
    fn allow_requires_reason() {
        let src = "// lint: allow(panic)\nlet x = 1;\n// lint: allow(panic): invariant holds\n";
        let m = FileModel::parse(src);
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].name, "panic");
        assert_eq!(m.directive_errors.len(), 1);
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = "fn outer() { let c = || { inner_call(); }; }";
        let m = FileModel::parse(src);
        let idx = m
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Word(w) if *w == "inner_call"))
            .unwrap();
        assert_eq!(m.enclosing_fn(idx).unwrap().name, "outer");
    }
}
