//! A minimal JSON parser, just enough to validate `BENCH_exec.json` against a
//! declared schema. Replaces the old `grep -q '"field"'` chain in CI, which
//! could not tell a present-but-null field from a real number.

use std::fmt;

#[derive(Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

#[derive(Debug)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

pub fn parse(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content after top-level value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(err(*pos, "expected object key"));
                }
                *pos += 1;
                let key = parse_string_body(src, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after key"));
                }
                *pos += 1;
                let value = parse_value(src, bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            Ok(Json::Str(parse_string_body(src, bytes, pos)?))
        }
        Some(b't') if src[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if src[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if src[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(err(start, "unexpected character"));
            }
            src[start..*pos]
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| err(start, "invalid number"))
        }
    }
}

/// Parse a string body (after the opening quote) through the closing quote.
fn parse_string_body(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = bytes.get(*pos + 1).copied();
                match esc {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') | Some(b'f') => {}
                    Some(b'u') => {
                        // \uXXXX — decode the BMP scalar, skip surrogate math.
                        let hex = src.get(*pos + 2..*pos + 6).unwrap_or("");
                        if let Ok(cp) = u32::from_str_radix(hex, 16) {
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 2;
            }
            _ => {
                let c = src[*pos..].chars().next().unwrap_or('\u{fffd}');
                out.push(c);
                *pos += c.len_utf8().max(1);
            }
        }
    }
    Err(err(*pos, "unterminated string"))
}

// ---------------------------------------------------------------------------
// Bench schema
// ---------------------------------------------------------------------------

/// The one declared list of bench fields CI gates on: every field must be
/// present at the top level of `BENCH_exec.json` and be a finite number.
pub const REQUIRED_BENCH_FIELDS: &[&str] = &[
    "order_stat_speedup",
    "moment_speedup",
    "transform_rows_per_sec",
    "serve_lookups_per_sec",
    "parallel_transform_speedup",
    "p50_lookup_us",
    "p99_lookup_us",
    "shed_rate",
    "ingest_rows_per_sec",
    "staleness_us",
    "path_search_candidates",
    "paths_promoted",
    "hop2_transform_rows_per_sec",
    "shard_lookups_per_sec",
    "shard_count",
    "cancelled_rate",
];

/// Pools that must appear (as `{"pool": <name>, ...}` entries with a numeric
/// `speedup`) in the `pools` array. `order_trivial` pins the fast-path
/// dispatch the bench exists to demonstrate.
pub const REQUIRED_BENCH_POOLS: &[&str] = &["order_trivial"];

/// Validate the bench artifact. Returns human-readable problems (empty = ok).
pub fn check_bench_schema(src: &str) -> Vec<String> {
    let doc = match parse(src) {
        Ok(doc) => doc,
        Err(e) => return vec![e.to_string()],
    };
    let mut problems = Vec::new();
    if !matches!(doc, Json::Obj(_)) {
        return vec!["top-level value is not an object".to_string()];
    }
    for field in REQUIRED_BENCH_FIELDS {
        match doc.get(field) {
            None => problems.push(format!("missing required field `{field}`")),
            Some(v) => match v.as_num() {
                Some(n) if n.is_finite() => {}
                Some(_) => problems.push(format!("field `{field}` is not finite")),
                None => problems.push(format!("field `{field}` is not a number")),
            },
        }
    }
    let pools = doc.get("pools");
    match pools {
        Some(Json::Arr(items)) => {
            for want in REQUIRED_BENCH_POOLS {
                let entry = items
                    .iter()
                    .find(|p| p.get("pool").and_then(Json::as_str) == Some(want));
                match entry {
                    None => problems.push(format!("missing pools entry `{want}`")),
                    Some(p) => {
                        if p.get("speedup").and_then(Json::as_num).map(f64::is_finite) != Some(true)
                        {
                            problems.push(format!("pools entry `{want}` has no finite `speedup`"));
                        }
                    }
                }
            }
        }
        _ => problems.push("missing or non-array `pools` field".to_string()),
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let doc = parse(r#"{"a": [1, 2.5, {"b": "x"}], "c": null, "d": true}"#).unwrap();
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        match doc.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[1], Json::Num(2.5));
                assert_eq!(items[2].get("b").and_then(Json::as_str), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn schema_catches_missing_and_nonnumeric() {
        let mut fields: Vec<String> = REQUIRED_BENCH_FIELDS
            .iter()
            .map(|f| format!("\"{f}\": 1.0"))
            .collect();
        fields.push("\"pools\": [{\"pool\": \"order_trivial\", \"speedup\": 2.0}]".to_string());
        let good = format!("{{{}}}", fields.join(", "));
        assert!(check_bench_schema(&good).is_empty());

        let missing = good.replace("\"shed_rate\": 1.0", "\"shed_rate\": \"oops\"");
        let problems = check_bench_schema(&missing);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("shed_rate"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("").is_err());
        assert!(!check_bench_schema("[1,2,3]").is_empty());
    }
}
