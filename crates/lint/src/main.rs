//! CLI for the invariant checker.
//!
//! ```text
//! feataug-lint [--root DIR] [--deny]        # lint the workspace sources
//! feataug-lint --bench-schema FILE          # validate a bench JSON artifact
//! ```
//!
//! Diagnostics go to stdout as `file:line: lint-name: message`; a summary goes
//! to stderr. Without `--deny` the source lint always exits 0 (report mode);
//! with it, any diagnostic is fatal. `--bench-schema` failures are always
//! fatal — a bench artifact is either valid or it is not.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut bench_schema: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--bench-schema" => match args.next() {
                Some(file) => bench_schema = Some(PathBuf::from(file)),
                None => return usage("--bench-schema needs a file"),
            },
            "--help" | "-h" => {
                eprintln!("usage: feataug-lint [--root DIR] [--deny] [--bench-schema FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(path) = bench_schema {
        let src = match std::fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("feataug-lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let problems = feataug_lint::json::check_bench_schema(&src);
        for p in &problems {
            println!("{}: bench-schema: {p}", path.display());
        }
        return if problems.is_empty() {
            eprintln!(
                "feataug-lint: {} ok ({} required fields, pools checked)",
                path.display(),
                feataug_lint::json::REQUIRED_BENCH_FIELDS.len()
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let report = match feataug_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("feataug-lint: workspace scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    eprintln!(
        "feataug-lint: scanned {} files, {} failpoint sites, {} diagnostics",
        report.files_scanned,
        report.failpoint_sites.len(),
        report.diagnostics.len()
    );
    if deny && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("feataug-lint: {problem}");
    eprintln!("usage: feataug-lint [--root DIR] [--deny] [--bench-schema FILE]");
    ExitCode::FAILURE
}
