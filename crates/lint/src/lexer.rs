//! A small hand-rolled lexer for Rust source.
//!
//! The lints in this crate only need a token stream that is *safe to pattern
//! match*: comments and literal contents must never be mistaken for code
//! (a doc comment that says "this panics" is not a `panic!`, and the lint's
//! own deny-lists live in string literals, so the workspace self-lint would
//! deadlock on itself without this). The lexer therefore produces:
//!
//! - a stream of [`Token`]s: identifiers, punctuation, and string literals
//!   (string *values* are kept because the failpoint-registry lint needs
//!   `fail_point!("name")` site names and chaos-suite arm literals);
//! - the list of [`Comment`]s, kept separately, because the suppression
//!   grammar (`// lint: allow(..)`) and the `// lint: hot-path` marker live
//!   in comments.
//!
//! Handled forms: `//` and `/*…*/` (nested) comments, `"…"` and `b"…"`
//! strings with escapes, `r"…"`/`r#"…"#`/`br#"…"#` raw strings, `'c'` and
//! `b'c'` char literals, and `'lifetime` quotes (which are *not* char
//! literals and must not swallow code).

/// One lexed token. Numbers and whitespace are skipped: no lint needs them.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok<'a> {
    /// An identifier or keyword, borrowed from the source.
    Word(&'a str),
    /// The decoded value of a string literal (escapes resolved best-effort).
    Str(String),
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct(char),
}

/// A token plus where it came from.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    pub tok: Tok<'a>,
    /// 1-based source line.
    pub line: u32,
}

/// A comment with its delimiters stripped and the text trimmed.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment *starts* on.
    pub line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub tokens: Vec<Token<'a>>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in `bytes[from..to]` and advance the line counter.
    let count_lines = |bytes: &[u8], from: usize, to: usize, line: &mut u32| {
        *line += bytes[from..to].iter().filter(|&&b| b == b'\n').count() as u32;
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                let text = src[start..j].trim_start_matches(['/', '!']).trim();
                out.comments.push(Comment {
                    line,
                    text: text.to_string(),
                });
                i = j;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let comment_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: comment_line,
                    text: src[start..end].trim().to_string(),
                });
                count_lines(bytes, i, j, &mut line);
                i = j;
            }
            b'"' => {
                let (value, j) = scan_string(src, i + 1);
                out.tokens.push(Token {
                    tok: Tok::Str(value),
                    line,
                });
                count_lines(bytes, i, j, &mut line);
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime. `'\…'` and `'c'` are literals;
                // `'ident` (no closing quote right after one char) is a
                // lifetime and the quote is simply dropped.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    let mut j = i + 2;
                    if j < bytes.len() {
                        j += 1; // escaped char (handles \' and \\)
                    }
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1; // \u{…} and friends
                    }
                    i = j + 1;
                } else {
                    // One UTF-8 scalar followed by a closing quote?
                    let rest = &src[i + 1..];
                    let mut chars = rest.chars();
                    match (chars.next(), chars.next()) {
                        (Some(c), Some('\'')) => i += 1 + c.len_utf8() + 1,
                        _ => i += 1, // lifetime quote
                    }
                }
            }
            b'r' | b'b' if is_literal_prefix(bytes, i) => {
                let (skip, j) = scan_prefixed_literal(src, i);
                if let Some(value) = skip {
                    out.tokens.push(Token {
                        tok: Tok::Str(value),
                        line,
                    });
                }
                count_lines(bytes, i, j, &mut line);
                i = j;
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Word(&src[start..j]),
                    line,
                });
                i = j;
            }
            _ if b.is_ascii_digit() => {
                // Numbers are skipped, but consume the whole literal so that
                // suffixes (`1usize`) don't leak a Word, and `.0` tuple access
                // still yields its `.` punct first.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && bytes[j + 1].is_ascii_digit()
                {
                    j += 2;
                    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric())
                    {
                        j += 1;
                    }
                }
                i = j;
            }
            _ => {
                if b.is_ascii() {
                    out.tokens.push(Token {
                        tok: Tok::Punct(b as char),
                        line,
                    });
                    i += 1;
                } else {
                    // Skip a non-ASCII scalar (only appears in docs/strings
                    // in practice, but stay panic-free on arbitrary input).
                    let c = src[i..].chars().next().unwrap_or('\u{fffd}');
                    i += c.len_utf8().max(1);
                }
            }
        }
    }
    out
}

/// Scan a `"…"` body starting *after* the opening quote. Returns the decoded
/// value and the index just past the closing quote.
fn scan_string(src: &str, start: usize) -> (String, usize) {
    let bytes = src.as_bytes();
    let mut value = String::new();
    let mut j = start;
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return (value, j + 1),
            b'\\' if j + 1 < bytes.len() => {
                match bytes[j + 1] {
                    b'n' => value.push('\n'),
                    b't' => value.push('\t'),
                    b'r' => value.push('\r'),
                    b'0' => value.push('\0'),
                    b'\\' => value.push('\\'),
                    b'"' => value.push('"'),
                    b'\'' => value.push('\''),
                    // \u{…}, \xNN, or a line-continuation: drop the escape;
                    // no lint compares strings containing these.
                    _ => {}
                }
                j += 2;
            }
            _ => {
                let c = src[j..].chars().next().unwrap_or('\u{fffd}');
                value.push(c);
                j += c.len_utf8().max(1);
            }
        }
    }
    (value, j)
}

/// Is the `r`/`b` at `i` the start of a literal (`r"`, `r#`, `b"`, `b'`,
/// `br"`, `br#`) rather than a plain identifier?
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    // Not a prefix if the previous byte continues an identifier (e.g. `ptr` or
    // `attr` ending in `r` followed by `"` would be misread otherwise — that
    // cannot happen because the previous char would have consumed the `r`, but
    // guard anyway).
    if i > 0 && (bytes[i - 1] == b'_' || bytes[i - 1].is_ascii_alphanumeric()) {
        return false;
    }
    let next = |k: usize| bytes.get(i + k).copied();
    match bytes[i] {
        b'r' => matches!(next(1), Some(b'"') | Some(b'#')),
        b'b' => match next(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(next(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scan `r"…"`, `r#"…"#`, `b"…"`, `b'c'`, `br#"…"#` starting at the prefix.
/// Returns `(Some(value), end)` for string-like literals, `(None, end)` for
/// byte-char literals.
fn scan_prefixed_literal(src: &str, start: usize) -> (Option<String>, usize) {
    let bytes = src.as_bytes();
    let mut i = start;
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        raw = true;
        i += 1;
    }
    if !raw && i < bytes.len() && bytes[i] == b'\'' {
        // b'c' byte-char literal.
        let mut j = i + 1;
        if j < bytes.len() && bytes[j] == b'\\' {
            j += 2;
        } else {
            j += 1;
        }
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (None, j + 1);
    }
    if raw {
        let mut hashes = 0usize;
        while i < bytes.len() && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'"' {
            // `r#ident` raw identifier: treat the `r#` as consumed, the
            // identifier lexes on the next loop iteration.
            return (None, i);
        }
        let body_start = i + 1;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat(b'#').take(hashes))
            .collect();
        let mut j = body_start;
        while j < bytes.len() {
            if bytes[j] == b'"' && bytes[j..].starts_with(&closer) {
                return (Some(src[body_start..j].to_string()), j + closer.len());
            }
            j += 1;
        }
        (Some(src[body_start..].to_string()), j)
    } else {
        // b"…" — same escape rules as a plain string.
        debug_assert_eq!(bytes.get(i), Some(&b'"'));
        let (value, j) = scan_string(src, i + 1);
        (Some(value), j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Word(w) => Some(w.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let src = "// calls panic!\n/* unwrap() here */\nlet x = 1;";
        assert_eq!(words(src), ["let", "x"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "calls panic!");
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn strings_are_values_not_code() {
        let src = r#"let s = "unwrap() \" quoted"; s.len();"#;
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(v) if v == "unwrap() \" quoted")));
        assert_eq!(words(src), ["let", "s", "s", "len"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r###"let s = r#"a "b" c"#; x"###;
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(v) if v == "a \"b\" c")));
        assert_eq!(words(src), ["let", "s", "x"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) { x.unwrap() }";
        assert!(words(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_are_skipped() {
        let src = "let c = 'x'; let q = '\\''; let n = '\\n'; c.clone()";
        let w = words(src);
        assert!(w.contains(&"clone".to_string()));
        assert!(!w.contains(&"x".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nfoo();";
        let lexed = lex(src);
        let foo = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Word(w) if *w == "foo"))
            .expect("foo token");
        assert_eq!(foo.line, 3);
    }

    #[test]
    fn numbers_with_suffixes_vanish() {
        assert_eq!(words("let x = 1usize + 2.5f64 + 0xff;"), ["let", "x"]);
    }
}
