//! The invariant lints.
//!
//! Each lint is a pure function over a [`FileModel`] that yields raw findings;
//! the driver in `lib.rs` applies suppressions and attaches file paths. The
//! invariants these encode are documented in `crates/lint/README.md`.

use crate::lexer::{Tok, Token};
use crate::scope::FileModel;

/// A raw finding before suppression filtering.
#[derive(Debug)]
pub struct Finding {
    pub lint: &'static str,
    pub line: u32,
    pub message: String,
}

pub const PANIC_DISCIPLINE: &str = "panic-discipline";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const ALLOC_FREE_HOT_PATH: &str = "alloc-free-hot-path";
pub const CATCH_UNWIND_WORKERS: &str = "catch-unwind-workers";
pub const FAILPOINT_REGISTRY: &str = "failpoint-registry";
pub const DIRECTIVE: &str = "lint-directive";

/// Short aliases accepted in `allow(...)` for each lint.
pub fn aliases(lint: &str) -> &'static [&'static str] {
    match lint {
        PANIC_DISCIPLINE => &["panic"],
        LOCK_DISCIPLINE => &["lock"],
        ALLOC_FREE_HOT_PATH => &["alloc"],
        CATCH_UNWIND_WORKERS => &["catch-unwind"],
        FAILPOINT_REGISTRY => &["failpoint"],
        _ => &[],
    }
}

/// Every lint name that may appear in an `allow(...)` directive.
pub fn known_allow_names() -> Vec<&'static str> {
    let mut names = vec![
        PANIC_DISCIPLINE,
        LOCK_DISCIPLINE,
        ALLOC_FREE_HOT_PATH,
        CATCH_UNWIND_WORKERS,
        FAILPOINT_REGISTRY,
    ];
    for lint in names.clone() {
        names.extend_from_slice(aliases(lint));
    }
    names
}

fn word_at<'a>(tokens: &'a [Token<'_>], i: usize) -> Option<&'a str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Word(w)) => Some(w),
        _ => None,
    }
}

fn punct_at(tokens: &[Token<'_>], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(x)) if *x == c)
}

/// Is the word at `i` called — `(` directly after, or after a turbofish
/// (`.collect::<Vec<_>>()`)?
fn is_called(tokens: &[Token<'_>], i: usize) -> bool {
    if punct_at(tokens, i + 1, '(') {
        return true;
    }
    if punct_at(tokens, i + 1, ':') && punct_at(tokens, i + 2, ':') && punct_at(tokens, i + 3, '<')
    {
        let mut depth = 1i32;
        let mut j = i + 4;
        while j < tokens.len() && depth > 0 {
            match tokens[j].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        return punct_at(tokens, j, '(');
    }
    false
}

/// panic-discipline: serving-reachable modules must not contain panicking
/// calls/macros outside test code. Genuine failure paths return
/// `EngineResult`; provably-unreachable sites carry an `allow(panic)` with the
/// invariant as its reason.
pub fn panic_discipline(model: &FileModel<'_>) -> Vec<Finding> {
    const MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
    ];
    let tokens = &model.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if model.in_test(i) {
            continue;
        }
        let Some(w) = word_at(tokens, i) else {
            continue;
        };
        let line = tokens[i].line;
        if (w == "unwrap" || w == "expect")
            && i > 0
            && punct_at(tokens, i - 1, '.')
            && is_called(tokens, i)
        {
            out.push(Finding {
                lint: PANIC_DISCIPLINE,
                line,
                message: format!(
                    "`.{w}(…)` in a serving-reachable module; return an error or annotate the invariant"
                ),
            });
        } else if MACROS.contains(&w) && punct_at(tokens, i + 1, '!') {
            out.push(Finding {
                lint: PANIC_DISCIPLINE,
                line,
                message: format!(
                    "`{w}!` in a serving-reachable module; return an error or annotate the invariant"
                ),
            });
        }
    }
    out
}

/// lock-discipline, part 1: no bare `.read().unwrap()` / `.write().unwrap()` /
/// `.lock().unwrap()` (or `.expect(…)`) anywhere — lock access must go through
/// the poison-tolerant `*_recover` helpers so a panicking writer cannot take
/// the serving path down with it.
pub fn lock_discipline(model: &FileModel<'_>) -> Vec<Finding> {
    let tokens = &model.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let Some(m) = word_at(tokens, i) else {
            continue;
        };
        if !matches!(m, "read" | "write" | "lock") {
            continue;
        }
        // `.m().unwrap(` / `.m().expect(`
        let bare = i > 0
            && punct_at(tokens, i - 1, '.')
            && punct_at(tokens, i + 1, '(')
            && punct_at(tokens, i + 2, ')')
            && punct_at(tokens, i + 3, '.')
            && matches!(word_at(tokens, i + 4), Some("unwrap") | Some("expect"))
            && punct_at(tokens, i + 5, '(');
        if bare {
            let u = word_at(tokens, i + 4).unwrap_or("unwrap");
            out.push(Finding {
                lint: LOCK_DISCIPLINE,
                line: tokens[i].line,
                message: format!(
                    "bare `.{m}().{u}(…)`; use the poison-tolerant helpers (`read_recover`/`write_recover`/`lock_recover`)"
                ),
            });
        }
    }
    out
}

/// lock-discipline, part 2: named-lock acquisition order. The engine's lock
/// classes are ranked; acquiring a lower-ranked lock while textually after a
/// higher-ranked acquisition *within one function* is an inversion hazard
/// (the classic ingest-lock/epoch-cell deadlock shape).
///
/// Rank 0: `ingest` (the ingestion serialization mutex) — outermost.
/// Rank 1: `current` (the `EpochCell` swap mutex).
/// Rank 2: memo maps (`views`, `groups`, `sorted`, `cats`, `order`,
///         `group_feats`, `features`) and the tier `queue` — innermost.
pub fn lock_order(model: &FileModel<'_>) -> Vec<Finding> {
    fn rank(name: &str) -> Option<u8> {
        match name {
            "ingest" => Some(0),
            "current" => Some(1),
            "views" | "groups" | "sorted" | "cats" | "order" | "group_feats" | "features"
            | "queue" => Some(2),
            _ => None,
        }
    }
    let tokens = &model.tokens;
    let mut out = Vec::new();
    for f in &model.functions {
        let Some((open, close)) = f.body else {
            continue;
        };
        // (rank, lock name, line) in textual acquisition order.
        let mut acquired: Vec<(u8, String, u32)> = Vec::new();
        let mut i = open;
        while i < close {
            if let Some(w) = word_at(tokens, i) {
                if matches!(w, "lock_recover" | "read_recover" | "write_recover")
                    && punct_at(tokens, i + 1, '(')
                {
                    // Last path segment of the argument names the lock:
                    // `lock_recover(&self.shared.ingest)` → `ingest`.
                    let mut j = i + 2;
                    let mut depth = 1i32;
                    let mut last_word: Option<&str> = None;
                    while j < close && depth > 0 {
                        match &tokens[j].tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => depth -= 1,
                            Tok::Word(a) if depth == 1 => last_word = Some(a),
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(r) = last_word.and_then(rank) {
                        let name = last_word.unwrap_or_default().to_string();
                        let line = tokens[i].line;
                        for (prev_rank, prev_name, prev_line) in &acquired {
                            if r < *prev_rank {
                                out.push(Finding {
                                    lint: LOCK_DISCIPLINE,
                                    line,
                                    message: format!(
                                        "lock-order inversion in `{}`: `{name}` (rank {r}) acquired after `{prev_name}` (rank {prev_rank}, line {prev_line}); declared order is ingest → current → memo maps",
                                        f.name
                                    ),
                                });
                            }
                        }
                        acquired.push((r, name, line));
                    }
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// alloc-free-hot-path: inside a function marked `// lint: hot-path`, deny the
/// known allocating calls. Complements the counting-allocator runtime test:
/// the lint catches the regression at review time, the allocator at test time.
pub fn alloc_free_hot_path(model: &FileModel<'_>) -> Vec<Finding> {
    const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect", "clone"];
    const ALLOC_MACROS: &[&str] = &["format", "vec"];
    const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "HashMap", "BTreeMap"];
    let tokens = &model.tokens;
    let mut out = Vec::new();
    for f in model.functions.iter().filter(|f| f.hot) {
        let Some((open, close)) = f.body else {
            continue;
        };
        for i in open..close {
            let Some(w) = word_at(tokens, i) else {
                continue;
            };
            let line = tokens[i].line;
            if ALLOC_METHODS.contains(&w)
                && i > 0
                && punct_at(tokens, i - 1, '.')
                && is_called(tokens, i)
            {
                out.push(Finding {
                    lint: ALLOC_FREE_HOT_PATH,
                    line,
                    message: format!("`.{w}(…)` allocates inside hot-path fn `{}`", f.name),
                });
            } else if ALLOC_MACROS.contains(&w) && punct_at(tokens, i + 1, '!') {
                out.push(Finding {
                    lint: ALLOC_FREE_HOT_PATH,
                    line,
                    message: format!("`{w}!` allocates inside hot-path fn `{}`", f.name),
                });
            } else if ALLOC_TYPES.contains(&w)
                && punct_at(tokens, i + 1, ':')
                && punct_at(tokens, i + 2, ':')
                && matches!(
                    word_at(tokens, i + 3),
                    Some("new") | Some("with_capacity") | Some("from")
                )
                && punct_at(tokens, i + 4, '(')
            {
                let ctor = word_at(tokens, i + 3).unwrap_or("new");
                out.push(Finding {
                    lint: ALLOC_FREE_HOT_PATH,
                    line,
                    message: format!("`{w}::{ctor}(…)` allocates inside hot-path fn `{}`", f.name),
                });
            }
        }
    }
    out
}

/// catch-unwind-workers: every `std::thread::scope` in `crates/feataug/src`
/// non-test code must live in a function that also contains a `catch_unwind`
/// (i.e. `fan_out` or an equivalent wrapper) so a panicking worker closure is
/// contained instead of tearing down the process.
pub fn catch_unwind_workers(model: &FileModel<'_>) -> Vec<Finding> {
    let tokens = &model.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if model.in_test(i) {
            continue;
        }
        let is_scope = word_at(tokens, i) == Some("thread")
            && punct_at(tokens, i + 1, ':')
            && punct_at(tokens, i + 2, ':')
            && word_at(tokens, i + 3) == Some("scope")
            && punct_at(tokens, i + 4, '(');
        if !is_scope {
            continue;
        }
        let line = tokens[i].line;
        let guarded = match model.enclosing_fn(i) {
            Some(f) => {
                let (open, close) = f.body.unwrap_or((0, 0));
                (open..close).any(|j| word_at(tokens, j) == Some("catch_unwind"))
            }
            None => false,
        };
        if !guarded {
            out.push(Finding {
                lint: CATCH_UNWIND_WORKERS,
                line,
                message: "`thread::scope` without a `catch_unwind` wrapper in the same fn; route worker closures through `fan_out`".to_string(),
            });
        }
    }
    out
}

/// Extract `fail_point!("name")` sites (name + line) from a file. The
/// `macro_rules!` definition itself does not match: its `$name` metavariable
/// is not a string literal.
pub fn failpoint_sites(model: &FileModel<'_>) -> Vec<(String, u32)> {
    let tokens = &model.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if word_at(tokens, i) == Some("fail_point") && punct_at(tokens, i + 1, '!') {
            // `fail_point!("name")` or `crate::fail_point!("name", default)`.
            if punct_at(tokens, i + 2, '(') {
                if let Some(Tok::Str(name)) = tokens.get(i + 3).map(|t| &t.tok) {
                    out.push((name.clone(), tokens[i].line));
                }
            }
        }
    }
    out
}

/// All string literal values in a file, for the chaos-suite arm scan.
pub fn string_literals(model: &FileModel<'_>) -> Vec<String> {
    model
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel<'_> {
        FileModel::parse(src)
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) { x.unwrap_or_else(|| 0); x.unwrap_or(0); }";
        assert!(panic_discipline(&model(src)).is_empty());
    }

    #[test]
    fn expect_err_is_not_expect() {
        let src = "fn f(x: Result<u8, u8>) { x.expect_err(\"nope\"); }";
        assert!(panic_discipline(&model(src)).is_empty());
    }

    #[test]
    fn lock_order_flags_inversion_only() {
        let ok = "fn f(&self) { let _g = lock_recover(&self.ingest); let v = write_recover(&self.views); }";
        assert!(lock_order(&model(ok)).is_empty());
        let bad = "fn f(&self) { let v = write_recover(&self.views); let _g = lock_recover(&self.ingest); }";
        let findings = lock_order(&model(bad));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("inversion"));
    }

    #[test]
    fn failpoint_macro_rules_definition_is_not_a_site() {
        let src = "macro_rules! fail_point { ($name:expr) => {}; }\nfn f() { fail_point!(\"exec.kernel\"); }";
        let sites = failpoint_sites(&model(src));
        assert_eq!(sites, vec![("exec.kernel".to_string(), 2)]);
    }
}
