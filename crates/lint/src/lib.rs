//! `feataug-lint`: a dependency-free invariant checker for this workspace.
//!
//! PRs 6–7 made the serving stack survivable by *convention*: worker closures
//! run under `catch_unwind`, lock access is poison-tolerant, the warm lookup
//! path never allocates, failpoint names stay in sync with the chaos suite,
//! and serving-reachable code returns `EngineResult` instead of panicking.
//! This crate turns those conventions into static analysis that CI gates on
//! (the `invariants` job runs `cargo run -p feataug-lint -- --deny`).
//!
//! The lints, the suppression grammar, and the invariant each lint encodes are
//! documented in `crates/lint/README.md`. Diagnostics are machine-readable:
//! `file:line: lint-name: message`.

pub mod json;
pub mod lexer;
pub mod lints;
pub mod scope;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lints::{aliases, known_allow_names, Finding};
use scope::FileModel;

/// One reported problem, formatted as `file:line: lint-name: message`.
#[derive(Debug)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Serving-reachable modules: a panic anywhere here can surface inside a
/// `ServingHandle::lookup` or tier worker, so panic-discipline applies.
pub const SERVING_MODULES: &[&str] = &[
    "crates/feataug/src/exec.rs",
    "crates/feataug/src/serving.rs",
    "crates/feataug/src/serving/shard.rs",
    "crates/feataug/src/serving/tier.rs",
    "crates/feataug/src/query.rs",
    "crates/feataug/src/multi.rs",
    "crates/feataug/src/schema.rs",
    "crates/feataug/src/schema/graph.rs",
    "crates/feataug/src/schema/path.rs",
    "crates/feataug/src/schema/compile.rs",
    "crates/feataug/src/schema/fit.rs",
];

/// Where the failpoint name registry lives, relative to the workspace root.
pub const FAILPOINT_REGISTRY_PATH: &str = "crates/feataug/failpoints.txt";

/// The chaos suite that must arm every registered failpoint.
pub const CHAOS_SUITE_PATH: &str = "tests/chaos.rs";

/// How one file participates in the lint pass, derived from its path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// panic-discipline applies (serving-reachable module).
    pub serving_module: bool,
    /// catch-unwind-workers applies (`crates/feataug/src`).
    pub feataug_src: bool,
    /// String literals feed the failpoint arm scan (`tests/chaos.rs`).
    pub chaos_suite: bool,
}

/// Classify a workspace-relative path (`/`-separated).
pub fn classify(rel_path: &str) -> FileClass {
    FileClass {
        serving_module: SERVING_MODULES.contains(&rel_path),
        feataug_src: rel_path.starts_with("crates/feataug/src/"),
        chaos_suite: rel_path == CHAOS_SUITE_PATH,
    }
}

/// Lint one file's source. Applies the `allow(...)` suppression grammar; also
/// reports malformed or unknown-name directives.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let class = classify(rel_path);
    let model = FileModel::parse(src);
    let mut findings: Vec<Finding> = Vec::new();

    if class.serving_module {
        findings.extend(lints::panic_discipline(&model));
    }
    findings.extend(lints::lock_discipline(&model));
    findings.extend(lints::lock_order(&model));
    findings.extend(lints::alloc_free_hot_path(&model));
    if class.feataug_src {
        findings.extend(lints::catch_unwind_workers(&model));
    }

    let mut out: Vec<Diagnostic> = findings
        .into_iter()
        .filter(|f| !model.suppressed(f.lint, aliases(f.lint), f.line))
        .map(|f| Diagnostic {
            file: rel_path.to_string(),
            line: f.line,
            lint: f.lint,
            message: f.message,
        })
        .collect();

    // Directive hygiene: a malformed suppression must be a finding, not a
    // silent no-op, or a typo would quietly disable a lint.
    for (line, message) in &model.directive_errors {
        out.push(Diagnostic {
            file: rel_path.to_string(),
            line: *line,
            lint: lints::DIRECTIVE,
            message: message.clone(),
        });
    }
    let known = known_allow_names();
    for allow in &model.allows {
        if !known.contains(&allow.name.as_str()) {
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line: allow.line,
                lint: lints::DIRECTIVE,
                message: format!("unknown lint `{}` in allow(...)", allow.name),
            });
        }
    }
    out
}

/// Result of a whole-workspace run.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub failpoint_sites: Vec<(String, String, u32)>, // (name, file, line)
}

/// Lint every `.rs` file under `root` and cross-check the failpoint registry.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = WorkspaceReport::default();
    let mut chaos_literals: Vec<String> = Vec::new();

    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        report.diagnostics.extend(lint_source(&rel_str, &src));
        report.files_scanned += 1;

        let class = classify(&rel_str);
        let model = FileModel::parse(&src);
        for (name, line) in lints::failpoint_sites(&model) {
            report.failpoint_sites.push((name, rel_str.clone(), line));
        }
        if class.chaos_suite {
            chaos_literals = lints::string_literals(&model);
        }
    }

    check_failpoint_registry(
        root,
        &report.failpoint_sites,
        &chaos_literals,
        &mut report.diagnostics,
    );

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Three-way failpoint cross-check: `fail_point!` sites ↔ the checked-in
/// registry ↔ chaos-suite arms. No dead names in any direction.
fn check_failpoint_registry(
    root: &Path,
    sites: &[(String, String, u32)],
    chaos_literals: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let registry_path = root.join(FAILPOINT_REGISTRY_PATH);
    let registry_src = match fs::read_to_string(&registry_path) {
        Ok(s) => s,
        Err(_) => {
            out.push(Diagnostic {
                file: FAILPOINT_REGISTRY_PATH.to_string(),
                line: 1,
                lint: lints::FAILPOINT_REGISTRY,
                message: "registry file missing; every fail_point! name must be checked in here"
                    .to_string(),
            });
            return;
        }
    };
    let mut registry: Vec<(String, u32)> = Vec::new();
    for (i, raw) in registry_src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        registry.push((line.to_string(), i as u32 + 1));
    }

    for (name, file, line) in sites {
        if !registry.iter().any(|(r, _)| r == name) {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                lint: lints::FAILPOINT_REGISTRY,
                message: format!("fail_point!(\"{name}\") is not in {FAILPOINT_REGISTRY_PATH}"),
            });
        }
    }
    for (name, reg_line) in &registry {
        if !sites.iter().any(|(s, _, _)| s == name) {
            out.push(Diagnostic {
                file: FAILPOINT_REGISTRY_PATH.to_string(),
                line: *reg_line,
                lint: lints::FAILPOINT_REGISTRY,
                message: format!("registered failpoint `{name}` has no fail_point! site"),
            });
        }
        if !chaos_literals.iter().any(|l| l == name) {
            out.push(Diagnostic {
                file: FAILPOINT_REGISTRY_PATH.to_string(),
                line: *reg_line,
                lint: lints::FAILPOINT_REGISTRY,
                message: format!(
                    "registered failpoint `{name}` is never armed by {CHAOS_SUITE_PATH}"
                ),
            });
        }
    }
}

/// Recursively collect `.rs` files, skipping build output, VCS metadata, and
/// the vendored support stubs (which mirror external crates and are not held
/// to the engine's conventions).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | ".github") {
                continue;
            }
            if path
                .strip_prefix(root)
                .map(|r| r == Path::new("crates/support"))
                == Ok(true)
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paths() {
        assert!(classify("crates/feataug/src/exec.rs").serving_module);
        assert!(classify("crates/feataug/src/serving/tier.rs").serving_module);
        assert!(classify("crates/feataug/src/serving/shard.rs").serving_module);
        assert!(classify("crates/feataug/src/schema.rs").serving_module);
        assert!(classify("crates/feataug/src/schema/compile.rs").serving_module);
        assert!(!classify("crates/feataug/src/pipeline.rs").serving_module);
        assert!(classify("crates/feataug/src/pipeline.rs").feataug_src);
        assert!(classify("tests/chaos.rs").chaos_suite);
    }

    #[test]
    fn suppression_applies_same_line_and_above() {
        let src =
            "fn f(x: Option<u8>) {\n    // lint: allow(panic): seeded above\n    x.unwrap();\n}\n";
        let diags = lint_source("crates/feataug/src/exec.rs", src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn unknown_allow_name_is_reported() {
        let src = "// lint: allow(speling): because\nfn f() {}\n";
        let diags = lint_source("crates/feataug/src/pipeline.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, lints::DIRECTIVE);
    }
}
