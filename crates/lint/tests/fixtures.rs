//! Fixture suite: every lint fires on a known-bad snippet at the expected
//! line, and an `allow(...)` directive with a reason suppresses it. The last
//! tests lint the real workspace and require it clean — the same gate CI runs.

use std::fs;
use std::path::Path;

use feataug_lint::{lint_source, lint_workspace, lints};

/// Diagnostics for `src` treated as the named workspace-relative file.
fn diags(rel_path: &str, src: &str) -> Vec<(u32, &'static str)> {
    lint_source(rel_path, src)
        .into_iter()
        .map(|d| (d.line, d.lint))
        .collect()
}

const SERVING: &str = "crates/feataug/src/serving.rs";

// ---------------------------------------------------------------- panic-discipline

#[test]
fn panic_discipline_fires_on_unwrap_at_line() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    assert_eq!(diags(SERVING, src), vec![(2, lints::PANIC_DISCIPLINE)]);
}

#[test]
fn panic_discipline_fires_on_expect_and_macros() {
    let src = "fn f(x: Option<u8>) {\n    x.expect(\"oops\");\n    panic!(\"boom\");\n    unreachable!();\n    assert!(true);\n}\n";
    let got = diags(SERVING, src);
    assert_eq!(
        got,
        vec![
            (2, lints::PANIC_DISCIPLINE),
            (3, lints::PANIC_DISCIPLINE),
            (4, lints::PANIC_DISCIPLINE),
            (5, lints::PANIC_DISCIPLINE),
        ]
    );
}

#[test]
fn panic_discipline_skips_non_serving_modules_and_tests() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    assert!(diags("crates/feataug/src/template.rs", src).is_empty());

    let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
    assert!(diags(SERVING, test_src).is_empty());
}

#[test]
fn panic_discipline_allow_suppresses() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    // lint: allow(panic): seeded two lines up, key always present\n    x.unwrap()\n}\n";
    assert!(diags(SERVING, src).is_empty());
    // Full lint name works as well as the alias.
    let src2 = "fn f(x: Option<u8>) -> u8 {\n    // lint: allow(panic-discipline): seeded above\n    x.unwrap()\n}\n";
    assert!(diags(SERVING, src2).is_empty());
}

#[test]
fn panic_discipline_allow_without_reason_is_rejected() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    // lint: allow(panic)\n    x.unwrap()\n}\n";
    let got = diags(SERVING, src);
    // The finding stays AND the malformed directive is itself reported.
    assert!(got.contains(&(3, lints::PANIC_DISCIPLINE)), "{got:?}");
    assert!(got.contains(&(2, lints::DIRECTIVE)), "{got:?}");
}

// ---------------------------------------------------------------- lock-discipline

#[test]
fn lock_discipline_fires_on_bare_lock_unwrap() {
    let src = "fn f(&self) {\n    let g = self.inner.lock().unwrap();\n    let r = self.inner.read().expect(\"poisoned\");\n    let w = self.inner.write().unwrap();\n}\n";
    let got = diags("crates/feataug/src/encoding.rs", src);
    assert_eq!(
        got,
        vec![
            (2, lints::LOCK_DISCIPLINE),
            (3, lints::LOCK_DISCIPLINE),
            (4, lints::LOCK_DISCIPLINE),
        ]
    );
}

#[test]
fn lock_discipline_fires_on_order_inversion() {
    let src = "fn f(&self) {\n    let v = write_recover(&self.shared.views);\n    let g = lock_recover(&self.shared.ingest);\n}\n";
    assert_eq!(
        diags("crates/feataug/src/exec.rs", src),
        vec![(3, lints::LOCK_DISCIPLINE)]
    );
}

#[test]
fn lock_discipline_declared_order_is_clean() {
    let src = "fn f(&self) {\n    let g = lock_recover(&self.shared.ingest);\n    let c = lock_recover(&self.current);\n    let v = write_recover(&self.shared.views);\n}\n";
    assert!(diags("crates/feataug/src/exec.rs", src).is_empty());
}

#[test]
fn lock_discipline_allow_suppresses() {
    let src = "fn f(&self) {\n    // lint: allow(lock): startup-only init, no serving reader yet\n    let g = self.inner.lock().unwrap();\n}\n";
    assert!(diags("crates/feataug/src/encoding.rs", src).is_empty());
}

// ---------------------------------------------------------------- alloc-free-hot-path

#[test]
fn alloc_fires_only_in_hot_path_fns() {
    let src = "// lint: hot-path\nfn lookup(&self) -> String {\n    self.name.to_string()\n}\n\nfn cold(&self) -> String {\n    self.name.to_string()\n}\n";
    assert_eq!(
        diags("crates/feataug/src/serving.rs", src),
        vec![(3, lints::ALLOC_FREE_HOT_PATH)]
    );
}

#[test]
fn alloc_fires_on_macros_ctors_and_turbofish_collect() {
    let src = "// lint: hot-path\nfn lookup(&self) {\n    let v = Vec::new();\n    let s = format!(\"x\");\n    let c = self.xs.iter().collect::<Vec<_>>();\n}\n";
    let got = diags("crates/feataug/src/serving.rs", src);
    assert_eq!(
        got,
        vec![
            (3, lints::ALLOC_FREE_HOT_PATH),
            (4, lints::ALLOC_FREE_HOT_PATH),
            (5, lints::ALLOC_FREE_HOT_PATH),
        ]
    );
}

#[test]
fn alloc_allow_suppresses() {
    let src = "// lint: hot-path\nfn lookup(&self) {\n    // lint: allow(alloc): cold error branch, never taken on the warm path\n    let s = format!(\"x\");\n}\n";
    assert!(diags("crates/feataug/src/serving.rs", src).is_empty());
}

// ---------------------------------------------------------------- catch-unwind-workers

#[test]
fn catch_unwind_fires_on_unguarded_scope() {
    let src =
        "fn run(&self) {\n    std::thread::scope(|s| {\n        s.spawn(|| work());\n    });\n}\n";
    assert_eq!(
        diags("crates/feataug/src/exec.rs", src),
        vec![(2, lints::CATCH_UNWIND_WORKERS)]
    );
}

#[test]
fn catch_unwind_guarded_scope_is_clean() {
    let src = "fn run(&self) {\n    std::thread::scope(|s| {\n        s.spawn(|| catch_unwind(std::panic::AssertUnwindSafe(|| work())));\n    });\n}\n";
    assert!(diags("crates/feataug/src/exec.rs", src).is_empty());
}

#[test]
fn catch_unwind_only_applies_inside_feataug_src() {
    let src = "fn run() {\n    std::thread::scope(|s| {\n        s.spawn(|| work());\n    });\n}\n";
    assert!(diags("crates/bench/src/bin/bench_exec.rs", src).is_empty());
}

#[test]
fn catch_unwind_allow_suppresses() {
    let src = "fn run(&self) {\n    // lint: allow(catch-unwind): workers are infallible index copies\n    std::thread::scope(|s| {\n        s.spawn(|| work());\n    });\n}\n";
    assert!(diags("crates/feataug/src/exec.rs", src).is_empty());
}

// ---------------------------------------------------------------- failpoint-registry

/// Build a miniature workspace on disk and run the full `lint_workspace`
/// cross-check against it.
fn fixture_workspace(name: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("reset fixture dir");
    }
    for (rel, contents) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dirs");
        fs::write(&path, contents).expect("write fixture file");
    }
    root
}

#[test]
fn failpoint_registry_flags_all_three_directions() {
    let root = fixture_workspace(
        "fp-three-way",
        &[
            (
                "crates/feataug/src/exec.rs",
                "fn f() {\n    fail_point!(\"exec.gather\");\n    fail_point!(\"exec.unregistered\");\n}\n",
            ),
            (
                "crates/feataug/failpoints.txt",
                "# registry\nexec.gather\nexec.ghost\n",
            ),
            // Arms exec.gather only; exec.ghost is registered but never armed.
            (
                "tests/chaos.rs",
                "#[test]\nfn t() {\n    set(\"exec.gather\");\n}\n",
            ),
        ],
    );
    let report = lint_workspace(&root).expect("lint fixture workspace");
    let fp: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == lints::FAILPOINT_REGISTRY)
        .map(|d| d.message.clone())
        .collect();
    assert!(
        fp.iter()
            .any(|m| m.contains("exec.unregistered") && m.contains("not in")),
        "{fp:?}"
    );
    assert!(
        fp.iter()
            .any(|m| m.contains("exec.ghost") && m.contains("no fail_point! site")),
        "{fp:?}"
    );
    assert!(
        fp.iter()
            .any(|m| m.contains("exec.ghost") && m.contains("never armed")),
        "{fp:?}"
    );
    // exec.gather is a site, registered, and armed: no diagnostic mentions it.
    assert!(!fp.iter().any(|m| m.contains("`exec.gather`")), "{fp:?}");
}

#[test]
fn failpoint_registry_in_sync_is_clean() {
    let root = fixture_workspace(
        "fp-in-sync",
        &[
            (
                "crates/feataug/src/exec.rs",
                "fn f() {\n    fail_point!(\"exec.gather\");\n}\n",
            ),
            ("crates/feataug/failpoints.txt", "exec.gather\n"),
            (
                "tests/chaos.rs",
                "#[test]\nfn t() {\n    set(\"exec.gather\");\n}\n",
            ),
        ],
    );
    let report = lint_workspace(&root).expect("lint fixture workspace");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.failpoint_sites.len(), 1);
}

#[test]
fn failpoint_registry_missing_file_is_fatal() {
    let root = fixture_workspace(
        "fp-no-registry",
        &[(
            "crates/feataug/src/exec.rs",
            "fn f() {\n    fail_point!(\"exec.gather\");\n}\n",
        )],
    );
    let report = lint_workspace(&root).expect("lint fixture workspace");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == lints::FAILPOINT_REGISTRY
                && d.message.contains("registry file missing")),
        "{:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------------- the real workspace

/// The gate CI runs: the workspace itself must lint clean. Any new unwrap in a
/// serving module, unregistered failpoint, or allocation in a hot-path fn
/// fails this test before it ever reaches the CI job.
#[test]
fn workspace_self_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("lint the real workspace");
    assert!(
        report.files_scanned > 50,
        "walk looks broken: {} files",
        report.files_scanned
    );
    assert!(
        !report.failpoint_sites.is_empty(),
        "failpoint site scan found nothing — pattern or walk regressed"
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
}
