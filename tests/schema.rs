//! Schema-subsystem integration and property tests: 2-hop bit-identity
//! against eager pre-joins, randomized multi-hop plan-text round trips, and
//! budgeted exploration accounting.
//!
//! Worker regimes: like the rest of this suite, CI runs these tests both
//! under `FEATAUG_THREADS=1` and under the default worker count, so the
//! bit-identity properties are exercised in both engine regimes.

use proptest::prelude::*;

use feataug::schema::{
    enumerate_paths, fit_schema, materialize_path, JoinPath, SchemaGraph, SchemaTask,
};
use feataug::{
    AugPlan, AugTask, FeatAug, FeatAugConfig, PlanHop, PlanParseErrorKind, PlannedQuery,
    PredicateQuery,
};
use feataug_datagen::{instacart, GenConfig, SyntheticSchema};
use feataug_ml::{ModelKind, Task};
use feataug_tabular::join::left_join_expand;
use feataug_tabular::{AggFunc, Predicate, Table};

fn tiny_cfg(seed: u64) -> FeatAugConfig {
    let mut cfg = FeatAugConfig::fast(ModelKind::Linear).with_seed(seed);
    cfg.n_templates = 2;
    cfg.queries_per_template = 2;
    cfg.template_id.n_templates = 2;
    cfg.template_id.pool_samples = 6;
    cfg.sqlgen.warmup_iters = 10;
    cfg.sqlgen.warmup_top_k = 3;
    cfg.sqlgen.search_iters = 4;
    cfg
}

/// Register the generated multi-hop Instacart schema into a graph.
fn graph_of(ds: &SyntheticSchema) -> SchemaGraph {
    let mut graph = SchemaGraph::new();
    graph.register(ds.train.clone()).unwrap();
    for table in &ds.tables {
        graph.register(table.clone()).unwrap();
    }
    for edge in &ds.edges {
        let left: Vec<&str> = edge.left_keys.iter().map(|s| s.as_str()).collect();
        let right: Vec<&str> = edge.right_keys.iter().map(|s| s.as_str()).collect();
        graph
            .declare_edge(&edge.left, &edge.right, &left, &right)
            .unwrap();
    }
    graph
}

/// The full 2-hop path of the generated schema.
fn two_hop_path() -> JoinPath {
    let hop = |table: &str, key: &str| PlanHop {
        table: table.to_string(),
        left_keys: vec![key.to_string()],
        right_keys: vec![key.to_string()],
    };
    JoinPath {
        base: "orders".to_string(),
        base_keys: vec!["user_id".to_string()],
        hops: vec![
            hop("order_items", "order_id"),
            hop("products", "product_id"),
        ],
    }
}

/// The manual pre-join the paper's dataset preparation would do by hand:
/// eagerly chain `left_join_expand` hop by hop.
fn eager_two_hop(ds: &SyntheticSchema) -> Table {
    let orders = ds.table("orders").unwrap();
    let items = ds.table("order_items").unwrap();
    let products = ds.table("products").unwrap();
    let one = left_join_expand(orders, items, &["order_id"], &["order_id"]).unwrap();
    left_join_expand(&one, products, &["product_id"], &["product_id"]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The composed 2-hop view must be bit-identical to the eager pre-join
    /// chain — same columns, same order, same values, same categorical
    /// dictionaries — and a model fitted on either must produce identical
    /// plans and bit-identical transforms.
    #[test]
    fn two_hop_fit_is_bit_identical_to_manual_prejoin(seed in 0u64..500) {
        let ds = instacart::generate_schema(&GenConfig::tiny().with_seed(seed));
        let graph = graph_of(&ds);
        // The table *name* is presentation only (feature names hash the
        // query against a placeholder relation), but it is stored in the
        // plan — normalize it so plan equality compares the substance.
        let view = materialize_path(&graph, &two_hop_path()).unwrap()
            .as_ref()
            .clone()
            .with_name("joined");
        let eager = eager_two_hop(&ds).with_name("joined");
        prop_assert_eq!(&view, &eager);

        let fit_task = |relevant: Table| {
            AugTask::new(
                ds.train.clone(),
                relevant,
                ds.key_columns.clone(),
                ds.label_column.clone(),
                Task::BinaryClassification,
            )
            .with_agg_columns(vec!["price".into(), "cart_position".into()])
            .with_predicate_attrs(vec!["department".into(), "order_hour".into()])
        };
        let feataug = FeatAug::new(tiny_cfg(seed));
        let on_view = feataug.fit(&fit_task(view)).unwrap();
        let on_eager = feataug.fit(&fit_task(eager)).unwrap();
        prop_assert_eq!(on_view.plan(), on_eager.plan());
        prop_assert_eq!(
            on_view.transform(&ds.train).unwrap(),
            on_eager.transform(&ds.train).unwrap()
        );
    }

    /// Randomized multi-hop plans round-trip through the text format: hops
    /// present → `AUGPLAN 2` header, hopless → byte-stable v1; a version-3
    /// header is the typed `UnsupportedVersion` downgrade error.
    #[test]
    fn randomized_multi_hop_plans_round_trip(
        n_hops in 0usize..4,
        arity in 1usize..3,
        table_idx in 0usize..4,
    ) {
        let tables = ["rel", "deep table", "t\tab", "r\\slash"];
        let hops: Vec<PlanHop> = (0..n_hops)
            .map(|h| PlanHop {
                table: format!("{}{}", tables[(table_idx + h) % tables.len()], h),
                left_keys: (0..arity).map(|k| format!("lk{h}_{k}")).collect(),
                right_keys: (0..arity).map(|k| format!("rk{h}_{k}")).collect(),
            })
            .collect();
        let query = PredicateQuery {
            agg: AggFunc::Count,
            agg_column: "k".to_string(),
            predicate: Predicate::True,
            group_keys: vec!["k".to_string()],
        };
        let plan = AugPlan::new(
            "base",
            vec!["k".to_string()],
            vec![PlannedQuery { query, loss: 0.25 }],
        )
        .with_hops(hops.clone());

        let text = plan.to_plan_text();
        let expected_header = if hops.is_empty() { "AUGPLAN 1\n" } else { "AUGPLAN 2\n" };
        prop_assert!(text.starts_with(expected_header));
        let parsed = AugPlan::from_plan_text(&text).unwrap();
        prop_assert_eq!(&parsed, &plan);
        // Idempotent: re-serialization is byte-stable.
        prop_assert_eq!(parsed.to_plan_text(), text);

        // The same text under a future header is the typed downgrade error.
        let future = text.replacen("AUGPLAN 1", "AUGPLAN 3", 1)
            .replacen("AUGPLAN 2", "AUGPLAN 3", 1);
        let err = AugPlan::from_plan_text(&future).unwrap_err();
        prop_assert_eq!(err.kind, PlanParseErrorKind::UnsupportedVersion { found: 3 });

        // Hop directives under a v1 header are malformed, not silently
        // accepted (a v1 reader must not half-read a v2 plan).
        if !hops.is_empty() {
            let downgraded = text.replacen("AUGPLAN 2", "AUGPLAN 1", 1);
            let err = AugPlan::from_plan_text(&downgraded).unwrap_err();
            prop_assert_eq!(err.kind, PlanParseErrorKind::Malformed);
        }
    }
}

/// Budgeted exploration must evaluate strictly fewer full candidates than
/// exhaustive path enumeration — the FeatNavigator/ARDA point of the proxy
/// gate — while still fitting the promoted paths.
#[test]
fn budgeted_exploration_promotes_strictly_fewer_than_enumerated() {
    let ds = instacart::generate_schema(&GenConfig::tiny());
    let graph = graph_of(&ds);
    let enumerated = enumerate_paths(&graph, "users", 2).unwrap();
    assert_eq!(enumerated.len(), 3); // orders, ⋈ order_items, ⋈ products

    let task = SchemaTask::new(graph, "users", "label", Task::BinaryClassification)
        .with_max_hops(2)
        .with_path_budget(1)
        .with_agg_columns(vec!["price".into(), "cart_position".into()])
        .with_predicate_attrs(vec!["department".into(), "order_hour".into()]);
    let fitted = fit_schema(&tiny_cfg(7), &task).unwrap();
    let stats = fitted.stats();
    assert_eq!(stats.candidates, enumerated.len());
    assert!(
        stats.promoted < stats.candidates,
        "budget must gate full fits ({} promoted of {})",
        stats.promoted,
        stats.candidates
    );
    assert_eq!(fitted.models().len(), stats.promoted);
}

/// `fit_multi` is the degenerate depth-1 case: `max_hops = 0` with an
/// uncapped budget fits exactly the directly-linked base tables, and each
/// fit matches a hand-built single-relevant-table pipeline run bit for bit.
#[test]
fn depth_one_fit_schema_degenerates_to_the_single_table_pipeline() {
    let ds = instacart::generate_schema(&GenConfig::tiny().with_seed(3));
    let graph = graph_of(&ds);
    let task = SchemaTask::new(graph, "users", "label", Task::BinaryClassification)
        .with_max_hops(0)
        .with_path_budget(usize::MAX);
    let fitted = fit_schema(&tiny_cfg(3), &task).unwrap();
    assert_eq!(fitted.models().len(), 1);
    assert!(fitted.paths()[0].hops.is_empty());

    let manual_task = AugTask::new(
        ds.train.clone(),
        ds.table("orders").unwrap().clone(),
        ds.key_columns.clone(),
        ds.label_column.clone(),
        Task::BinaryClassification,
    );
    let manual = FeatAug::new(tiny_cfg(3)).fit(&manual_task).unwrap();
    assert_eq!(fitted.models()[0].plan().queries, manual.plan().queries);
    assert_eq!(
        fitted.transform(&ds.train).unwrap(),
        manual.transform(&ds.train).unwrap()
    );
}

/// A fitted multi-hop plan survives the full round trip: text → parse →
/// recompile against a freshly registered schema → identical transforms.
#[test]
fn multi_hop_plan_recompiles_against_a_registered_schema() {
    let ds = instacart::generate_schema(&GenConfig::tiny().with_seed(11));
    let graph = graph_of(&ds);
    let task = SchemaTask::new(graph, "users", "label", Task::BinaryClassification)
        .with_max_hops(2)
        .with_path_budget(3)
        .with_agg_columns(vec!["price".into(), "cart_position".into()])
        .with_predicate_attrs(vec!["department".into(), "order_hour".into()]);
    let fitted = fit_schema(&tiny_cfg(11), &task).unwrap();
    // A second process: fresh graph over the same registered tables.
    let serving_graph = graph_of(&ds);
    for (model, plan) in fitted.models().iter().zip(fitted.plans()) {
        let text = plan.to_plan_text();
        let parsed = AugPlan::from_plan_text(&text).unwrap();
        let recompiled = serving_graph.compile("users", parsed).unwrap();
        assert_eq!(
            recompiled.transform(&ds.train).unwrap(),
            model.transform(&ds.train).unwrap()
        );
    }
}
