//! Shard-conformance suite: a key-sharded router must be indistinguishable —
//! bit for bit — from the unsharded engine it partitions, across every
//! serving surface.
//!
//! The suite pins, over randomized datasets and query pools:
//!
//! * `transform` through a [`ShardRouter`] at shard counts 1 / 2 / 7 against
//!   the unsharded serial (`workers = 1`) and default-worker paths (CI runs
//!   the whole suite under `FEATAUG_THREADS=1` *and* the default, so both
//!   engine worker regimes are covered);
//! * `lookup` for every training key, plus unseen and NULL adversaries
//!   (which must answer NULL on every shard count, exactly like the
//!   unsharded engine);
//! * serve through a prepared [`ShardedServingHandle`] against the unsharded
//!   `AugModel::serve` reference path;
//! * `append_relevant` — the router splits the batch by the routing hash and
//!   publishes per-shard epochs; post-append answers must match the
//!   unsharded engine after the same batch (which existing suites pin to a
//!   full refit);
//! * the shard-count-1 router as a degenerate case of today's path.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;

use feataug::pipeline::AugModel;
use feataug::{
    AugPlan, PlannedQuery, PredicateQuery, QueryCodec, QueryEngine, QueryTemplate, ShardRouter,
    ShardedServingHandle,
};
use feataug_datagen::GenConfig;
use feataug_repro::to_aug_task;
use feataug_tabular::{AggFunc, Table, Value};

/// A randomized query pool over one generated dataset's codec, adjusted so
/// every query groups by the first key column — the router needs at least
/// one key column common to every query's `group_keys`, and forcing one in
/// keeps the rest of the sampled subsets (and everything else about the
/// queries) random.
fn random_pool(
    ds: &feataug_datagen::SyntheticDataset,
    seed: u64,
    n_queries: usize,
) -> Vec<PredicateQuery> {
    let template = QueryTemplate::new(
        AggFunc::all().to_vec(),
        ds.agg_columns.clone(),
        ds.predicate_attrs.clone(),
        ds.key_columns.clone(),
    );
    let codec = QueryCodec::build(&template, &ds.relevant).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let anchor = &ds.key_columns[0];
    (0..n_queries)
        .map(|_| {
            let mut query = codec.decode(&codec.space().sample(&mut rng));
            if !query.group_keys.contains(anchor) {
                query.group_keys.insert(0, anchor.clone());
            }
            query
        })
        .collect()
}

fn dataset(seed: u64, dataset_idx: usize) -> feataug_datagen::SyntheticDataset {
    let name = feataug_datagen::one_to_many_names()[dataset_idx];
    feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap()
}

fn bits(values: &[Option<f64>]) -> Vec<Option<u64>> {
    values.iter().map(|v| v.map(f64::to_bits)).collect()
}

/// The key a train row presents for `query`, aligned with its `group_keys`.
fn row_key(train: &Table, row: usize, keys: &[String]) -> Vec<Value> {
    keys.iter().map(|k| train.value(row, k).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `transform` and `lookup` through the router are bit-identical to the
    /// unsharded engine at shard counts 1 / 2 / 7, for seen, unseen and NULL
    /// keys alike — and the unsharded serial and default-worker transforms
    /// agree with each other, so the sharded outputs match *both* regimes.
    #[test]
    fn sharded_transform_and_lookup_are_bit_identical(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 1usize..6,
    ) {
        let ds = dataset(seed, dataset_idx);
        let task = to_aug_task(&ds);
        let pool = random_pool(&ds, seed ^ 0x5a4d, n_queries);

        let baseline = QueryEngine::new(&ds.train, &ds.relevant);
        let serial = baseline.transform_threads(&pool, &ds.train, 1).unwrap();
        let default = baseline.transform(&pool, &ds.train).unwrap();
        for (want, got) in serial.iter().zip(&default) {
            prop_assert_eq!(bits(want), bits(got), "serial vs default workers");
        }

        for n_shards in [1usize, 2, 7] {
            let router = ShardRouter::build(
                task.train.clone(),
                &ds.relevant,
                &ds.key_columns,
                &pool,
                n_shards,
            )
            .unwrap();
            prop_assert_eq!(router.n_shards(), n_shards);

            let sharded = router.transform(&pool, &ds.train).unwrap();
            prop_assert_eq!(sharded.len(), serial.len());
            for (i, (got, want)) in sharded.iter().zip(&serial).enumerate() {
                prop_assert_eq!(
                    bits(got), bits(want),
                    "transform, n_shards={} query {}", n_shards, i
                );
            }

            for (qi, query) in pool.iter().enumerate() {
                for row in 0..ds.train.num_rows().min(12) {
                    let key = row_key(&ds.train, row, &query.group_keys);
                    let want = baseline.lookup(query, &key).unwrap();
                    let got = router.lookup(query, &key).unwrap();
                    prop_assert_eq!(
                        want.map(f64::to_bits), got.map(f64::to_bits),
                        "lookup, n_shards={} query {} row {}", n_shards, qi, row
                    );
                }
                // Unseen and NULL keys answer NULL whichever shard the hash
                // probes — the unsharded unseen-key semantics, unchanged.
                for key in [
                    query.group_keys.iter().map(|_| Value::Str("##never##".into())).collect::<Vec<_>>(),
                    query.group_keys.iter().map(|_| Value::Null).collect::<Vec<_>>(),
                ] {
                    prop_assert_eq!(router.lookup(query, &key).unwrap(), None);
                }
            }
        }
    }

    /// Post-append conformance: the router splits a batch across shards
    /// (per-shard epochs, one router generation); answers afterwards are
    /// bit-identical to the unsharded engine fed the same batch.
    #[test]
    fn sharded_append_is_bit_identical_to_unsharded(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 1usize..5,
    ) {
        let ds = dataset(seed, dataset_idx);
        let task = to_aug_task(&ds);
        let pool = random_pool(&ds, seed ^ 0xa99e, n_queries);

        // Fit on the first two thirds of the relevant rows, stream the rest.
        let n = ds.relevant.num_rows();
        let split = (n * 2 / 3).max(1).min(n);
        let base_rows: Vec<usize> = (0..split).collect();
        let batch_rows: Vec<usize> = (split..n).collect();
        let base = ds.relevant.take(&base_rows);
        let batch = ds.relevant.take(&batch_rows);

        let unsharded = QueryEngine::new(&ds.train, &base);
        unsharded.append_relevant(&batch).unwrap();
        let want = unsharded.transform(&pool, &ds.train).unwrap();

        for n_shards in [1usize, 2, 7] {
            let router = ShardRouter::build(
                task.train.clone(),
                &base,
                &ds.key_columns,
                &pool,
                n_shards,
            )
            .unwrap();
            prop_assert_eq!(router.generation(), 0);
            let epoch = router.append_relevant(&batch).unwrap();
            prop_assert_eq!(epoch.generation, 1);
            prop_assert_eq!(epoch.appended_rows, batch.num_rows());
            prop_assert_eq!(router.generation(), 1);
            // Every appended row landed on exactly one shard.
            let landed: usize = epoch.shard_epochs.iter().map(|(_, e)| e.appended_rows).sum();
            prop_assert_eq!(landed, batch.num_rows());

            let got = router.transform(&pool, &ds.train).unwrap();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    bits(g), bits(w),
                    "post-append transform, n_shards={} query {}", n_shards, i
                );
            }
            for query in &pool {
                for row in 0..ds.train.num_rows().min(8) {
                    let key = row_key(&ds.train, row, &query.group_keys);
                    prop_assert_eq!(
                        unsharded.lookup(query, &key).unwrap().map(f64::to_bits),
                        router.lookup(query, &key).unwrap().map(f64::to_bits),
                        "post-append lookup, n_shards={}", n_shards
                    );
                }
            }
        }
    }

    /// Serve conformance: a prepared [`ShardedServingHandle`] answers every
    /// key with exactly the bits the unsharded `AugModel::serve` reference
    /// path produces — before *and* after a live append (each shard's handle
    /// follows its shard's epochs by itself; no swap anywhere).
    #[test]
    fn sharded_serve_is_bit_identical_to_unsharded(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 1usize..5,
    ) {
        let ds = dataset(seed, dataset_idx);
        let task = to_aug_task(&ds);
        let pool = random_pool(&ds, seed ^ 0x3e12, n_queries);
        let plan = AugPlan::new(
            ds.relevant.name(),
            ds.key_columns.clone(),
            pool.iter().map(|q| PlannedQuery { query: q.clone(), loss: 0.0 }).collect(),
        );

        // Hold back a third of the relevant rows as a live batch.
        let n = ds.relevant.num_rows();
        let split = (n * 2 / 3).max(1).min(n);
        let base = ds.relevant.take(&(0..split).collect::<Vec<_>>());
        let batch = ds.relevant.take(&(split..n).collect::<Vec<_>>());

        let keys: Vec<Vec<Value>> = (0..ds.train.num_rows().min(12))
            .map(|row| row_key(&ds.train, row, &plan.key_columns))
            .chain([
                plan.key_columns.iter().map(|_| Value::Str("##never##".into())).collect(),
                plan.key_columns.iter().map(|_| Value::Null).collect(),
            ])
            .collect();

        for n_shards in [1usize, 2, 7] {
            // Fresh unsharded reference per shard count: the live append
            // below advances its epochs.
            let model = AugModel::compile_shared(
                plan.clone(),
                task.train.clone(),
                Arc::new(base.clone()),
            )
            .expect("plan compiles");
            let router = ShardRouter::build_for_plan(
                task.train.clone(),
                &base,
                &plan,
                n_shards,
            )
            .unwrap();
            let handle = ShardedServingHandle::prepare(&router, &plan).unwrap();
            prop_assert_eq!(handle.n_shards(), n_shards);
            prop_assert_eq!(handle.feature_names(), plan.feature_names().as_slice());
            prop_assert_eq!(handle.key_columns(), plan.key_columns.as_slice());

            let mut out = Vec::with_capacity(handle.num_features());
            for key in &keys {
                let want = model.serve(key).unwrap();
                handle.lookup(key, &mut out).unwrap();
                prop_assert_eq!(bits(&want), bits(&out), "serve, n_shards={}", n_shards);
            }

            // Live append: both sides ingest the same batch; the handles
            // follow their engines' epochs without any reinstall.
            if batch.num_rows() > 0 {
                model.append_relevant(&batch).unwrap();
                router.append_relevant(&batch).unwrap();
                for key in &keys {
                    let want = model.serve(key).unwrap();
                    handle.lookup(key, &mut out).unwrap();
                    prop_assert_eq!(
                        bits(&want), bits(&out),
                        "post-append serve, n_shards={}", n_shards
                    );
                }
            }
        }
    }
}

/// The one-shard router is today's path in a thin coat: it accepts pools a
/// multi-shard router must reject (disjoint group keys — nothing can
/// straddle when there is one shard), routes everything to shard 0, and
/// degenerates `transform` to a direct engine call.
#[test]
fn single_shard_router_degenerates_to_the_unsharded_path() {
    let ds = dataset(17, 0);
    let task = to_aug_task(&ds);
    // A disjoint pool: no key column common to every query.
    let keys = &ds.key_columns;
    assert!(keys.len() >= 2, "dataset 0 has a multi-column key");
    let agg = &ds.agg_columns[0];
    let disjoint = vec![
        PredicateQuery {
            agg: AggFunc::Sum,
            agg_column: agg.clone(),
            predicate: feataug_tabular::Predicate::True,
            group_keys: vec![keys[0].clone()],
        },
        PredicateQuery {
            agg: AggFunc::Avg,
            agg_column: agg.clone(),
            predicate: feataug_tabular::Predicate::True,
            group_keys: vec![keys[1].clone()],
        },
    ];
    let err = ShardRouter::build(task.train.clone(), &ds.relevant, keys, &disjoint, 2)
        .expect_err("a multi-shard router must reject a disjoint pool");
    assert!(err.to_string().contains("straddle"), "{err}");

    let router = ShardRouter::build(task.train.clone(), &ds.relevant, keys, &disjoint, 1).unwrap();
    assert_eq!(router.n_shards(), 1);
    let baseline = QueryEngine::new(&ds.train, &ds.relevant);
    let want = baseline.transform(&disjoint, &ds.train).unwrap();
    let got = router.transform(&disjoint, &ds.train).unwrap();
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(bits(w), bits(g));
    }
    for query in &disjoint {
        for row in 0..ds.train.num_rows().min(8) {
            let key = row_key(&ds.train, row, &query.group_keys);
            assert_eq!(
                baseline.lookup(query, &key).unwrap().map(f64::to_bits),
                router.lookup(query, &key).unwrap().map(f64::to_bits),
            );
        }
    }
}
