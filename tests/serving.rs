//! Serving conformance suite: the owned (`Arc`-backed) serving runtime, the
//! prepared lookup handle, and the parallel transform path must all agree —
//! bit for bit — with the borrowed model, the `serve` reference path and the
//! serial transform, including under thread contention.
//!
//! (The zero-allocation guarantee of `ServingHandle::lookup` lives in its
//! own binary, `tests/serving_alloc.rs`, behind a counting global
//! allocator.)

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;

use feataug::multi::{fit_multi_owned, MultiAugModel, MultiAugTask, RelevantSource};
use feataug::pipeline::AugModel;
use feataug::{
    AugPlan, FeatAug, FeatAugConfig, PlannedQuery, QueryCodec, QueryEngine, QueryTemplate,
};
use feataug_datagen::GenConfig;
use feataug_ml::{ModelKind, Task};
use feataug_repro::to_aug_task;
use feataug_tabular::{AggFunc, Column, Table, Value};

fn tiny_cfg(seed: u64) -> FeatAugConfig {
    let mut cfg = FeatAugConfig::fast(ModelKind::Linear).with_seed(seed);
    cfg.n_templates = 2;
    cfg.queries_per_template = 2;
    cfg.template_id.n_templates = 2;
    cfg.template_id.pool_samples = 6;
    cfg.sqlgen.warmup_iters = 10;
    cfg.sqlgen.warmup_top_k = 3;
    cfg.sqlgen.search_iters = 4;
    cfg
}

/// A randomized plan over one generated dataset's codec.
fn random_plan(ds: &feataug_datagen::SyntheticDataset, seed: u64, n_queries: usize) -> AugPlan {
    let template = QueryTemplate::new(
        AggFunc::all().to_vec(),
        ds.agg_columns.clone(),
        ds.predicate_attrs.clone(),
        ds.key_columns.clone(),
    );
    let codec = QueryCodec::build(&template, &ds.relevant).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let queries: Vec<PlannedQuery> = (0..n_queries)
        .map(|_| PlannedQuery {
            query: codec.decode(&codec.space().sample(&mut rng)),
            loss: 0.0,
        })
        .collect();
    AugPlan::new(ds.relevant.name(), ds.key_columns.clone(), queries)
}

fn bits(values: &[Option<f64>]) -> Vec<Option<u64>> {
    values.iter().map(|v| v.map(f64::to_bits)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The prepared handle answers every key — seen, unseen, NULL — with
    /// exactly the bits `serve` produces, which themselves match the
    /// transform rows. One conformance chain across all three serving paths,
    /// over randomized plans and datasets.
    #[test]
    fn prepared_lookup_serve_and_transform_agree(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 1usize..8,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let plan = random_plan(&ds, seed ^ 0xab5e, n_queries);
        let feature_names = plan.feature_names();

        // Owned model (Arc-backed): nothing below borrows the task tables.
        let model = AugModel::compile_shared(
            plan,
            task.train.clone(),
            task.relevant.clone(),
        )
        .expect("plan compiles");
        let handle = model.prepare().unwrap();
        prop_assert_eq!(handle.feature_names(), feature_names.as_slice());
        prop_assert_eq!(handle.key_columns(), task.key_columns.as_slice());

        let transformed = model.transform(&task.train).unwrap();
        let mut out = Vec::with_capacity(handle.num_features());
        for row in 0..task.train.num_rows().min(16) {
            let key: Vec<Value> = task
                .key_columns
                .iter()
                .map(|k| task.train.value(row, k).unwrap())
                .collect();
            let served = model.serve(&key).unwrap();
            handle.lookup(&key, &mut out).unwrap();
            prop_assert_eq!(bits(&served), bits(&out), "serve vs lookup, row {}", row);
            for (fname, value) in feature_names.iter().zip(&out) {
                if transformed.column(fname).is_err() {
                    continue; // feature name collided with a base column
                }
                let expected = match transformed.value(row, fname).unwrap() {
                    Value::Float(f) => Some(f),
                    Value::Null => None,
                    other => panic!("feature column held {other:?}"),
                };
                prop_assert_eq!(
                    value.map(f64::to_bits),
                    expected.map(f64::to_bits),
                    "lookup vs transform, row {} feature {}", row, fname
                );
            }
        }

        // Unseen and NULL keys: all three paths agree they are all-NULL.
        for key in [
            task.key_columns.iter().map(|_| Value::Str("##never##".into())).collect::<Vec<_>>(),
            task.key_columns.iter().map(|_| Value::Null).collect::<Vec<_>>(),
        ] {
            let served = model.serve(&key).unwrap();
            handle.lookup(&key, &mut out).unwrap();
            prop_assert_eq!(bits(&served), bits(&out));
            prop_assert!(out.iter().all(|v| v.is_none()));
        }

        // Batch lookups are bit-identical to serial ones at whatever worker
        // count the environment picks.
        let keys: Vec<Vec<Value>> = (0..task.train.num_rows().min(24))
            .map(|row| {
                task.key_columns
                    .iter()
                    .map(|k| task.train.value(row, k).unwrap())
                    .collect()
            })
            .collect();
        let batch = handle.lookup_batch(&keys).unwrap();
        for (key, got) in keys.iter().zip(&batch) {
            handle.lookup(key, &mut out).unwrap();
            prop_assert_eq!(bits(got), bits(&out));
        }
    }

    /// `QueryEngine::transform` fans per-query gathers across workers; the
    /// output must be bit-identical to the serial path at 1 / 2 / default
    /// workers, over randomized pools and datasets.
    #[test]
    fn parallel_transform_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 2usize..10,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let plan = random_plan(&ds, seed ^ 0x7e11, n_queries);
        let pool: Vec<_> = plan.queries.iter().map(|p| p.query.clone()).collect();

        let serial_engine = QueryEngine::new(&ds.train, &ds.relevant);
        let serial = serial_engine.transform_threads(&pool, &ds.train, 1).unwrap();
        for workers in [2, feataug::default_workers()] {
            let engine = QueryEngine::new(&ds.train, &ds.relevant);
            let parallel = engine.transform_threads(&pool, &ds.train, workers).unwrap();
            prop_assert_eq!(parallel.len(), serial.len());
            for (i, (got, want)) in parallel.iter().zip(&serial).enumerate() {
                prop_assert_eq!(
                    bits(got), bits(want),
                    "workers={} query {} of {}", workers, i, name
                );
            }
        }
    }

    /// `MultiAugModel::transform` is exactly the union of its per-source
    /// models' transforms, and transforming a 0-row table or a table whose
    /// keys the relevant tables have never seen yields all-NULL feature
    /// columns.
    #[test]
    fn multi_transform_is_union_of_sources_and_nulls_unseen(
        seed in 0u64..10_000,
        n_queries in 1usize..5,
    ) {
        // Two sources with the same schema (same generator, different seeds
        // → different relevant tables), sharing one training table — so the
        // union target carries both sources' key columns.
        let name = feataug_datagen::one_to_many_names()[0];
        let ds_a = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let ds_b = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed ^ 0x5a5a)).unwrap();
        let train = ds_a.train.clone();

        let model_a = AugModel::compile_shared(
            random_plan(&ds_a, seed ^ 0x11, n_queries),
            Arc::new(train.clone()),
            Arc::new(ds_a.relevant.clone()),
        )
        .expect("plan compiles");
        let model_b = AugModel::compile_shared(
            random_plan(&ds_b, seed ^ 0x22, n_queries),
            Arc::new(train.clone()),
            Arc::new(ds_b.relevant.clone()),
        )
        .expect("plan compiles");
        let features_a = model_a.transform_features(&train).unwrap();
        let features_b = model_b.transform_features(&train).unwrap();

        let multi = MultiAugModel::from_models(vec![model_a, model_b]);
        let unioned = multi.transform(&train).unwrap();

        // Union semantics: each source's features appear bit-identically
        // (columns already present — base columns or cross-source collisions
        // — are skipped, exactly like the per-source attach).
        let mut expected = train.clone();
        for (name, values) in features_a.iter().chain(&features_b) {
            let _ = expected.add_column(name.clone(), Column::from_opt_f64s(values));
        }
        prop_assert_eq!(unioned.column_names(), expected.column_names());
        for name in expected.column_names() {
            for row in 0..expected.num_rows() {
                prop_assert_eq!(
                    unioned.value(row, name).unwrap(),
                    expected.value(row, name).unwrap(),
                    "column {} row {}", name, row
                );
            }
        }

        // A 0-row table transforms to 0-row feature columns.
        let empty_rows: Vec<usize> = Vec::new();
        let empty = train.take(&empty_rows);
        let on_empty = multi.transform(&empty).unwrap();
        prop_assert_eq!(on_empty.num_rows(), 0);
        prop_assert_eq!(on_empty.column_names(), expected.column_names());

        // A held-out table whose keys were never seen: every attached
        // feature column is all-NULL.
        let all_keys: std::collections::HashSet<&String> =
            ds_a.key_columns.iter().chain(&ds_b.key_columns).collect();
        let mut held_out = Table::new("held_out");
        for key in &all_keys {
            let dtype = train.column(key).unwrap().dtype();
            let mut col = Column::empty(dtype);
            for i in 0..3 {
                col.push(match dtype {
                    feataug_tabular::DataType::Categorical => Value::Str(format!("##ghost{i}##")),
                    feataug_tabular::DataType::Int => Value::Int(i64::MIN + i),
                    feataug_tabular::DataType::DateTime => Value::DateTime(i64::MIN + i),
                    feataug_tabular::DataType::Float => Value::Float(-1.0e300 - i as f64),
                    feataug_tabular::DataType::Bool => Value::Null,
                }).unwrap();
            }
            held_out.add_column((*key).clone(), col).unwrap();
        }
        let on_held_out = multi.transform(&held_out).unwrap();
        for name in on_held_out.column_names() {
            if held_out.column(name).is_ok() {
                continue; // a key column, not a feature
            }
            for row in 0..on_held_out.num_rows() {
                prop_assert_eq!(
                    on_held_out.value(row, name).unwrap(),
                    Value::Null,
                    "unseen key must be NULL in {} row {}", name, row
                );
            }
        }
    }
}

/// N threads hammering `serve` and the prepared handle's `lookup` on ONE
/// shared owned model produce results bit-identical to the serial answers —
/// the `Arc`/`RwLock` engine core under real contention. CI runs this suite
/// under `FEATAUG_THREADS=1` and the default, so both engine worker regimes
/// are covered.
#[test]
fn concurrent_serving_is_bit_identical_to_serial() {
    let ds = feataug_datagen::generate_by_name(
        feataug_datagen::one_to_many_names()[0],
        &GenConfig::tiny().with_seed(99),
    )
    .unwrap();
    let task = to_aug_task(&ds);
    let plan = random_plan(&ds, 0x5eed, 6);
    let model = Arc::new(
        AugModel::compile_shared(plan, task.train.clone(), task.relevant.clone())
            .expect("plan compiles"),
    );

    // Keys: every train row plus unseen/NULL adversaries.
    let mut keys: Vec<Vec<Value>> = (0..task.train.num_rows())
        .map(|row| {
            task.key_columns
                .iter()
                .map(|k| task.train.value(row, k).unwrap())
                .collect()
        })
        .collect();
    keys.push(
        task.key_columns
            .iter()
            .map(|_| Value::Str("##never##".into()))
            .collect(),
    );
    keys.push(task.key_columns.iter().map(|_| Value::Null).collect());

    // Serial reference answers, computed on a separate identically-compiled
    // model so the shared model starts COLD — the threads below then race
    // the lazy compilation of every group index, view and per-group feature.
    let reference_model = AugModel::compile_shared(
        model.plan().clone(),
        task.train.clone(),
        task.relevant.clone(),
    )
    .expect("plan compiles");
    let reference: Vec<Vec<Option<f64>>> = keys
        .iter()
        .map(|k| reference_model.serve(k).unwrap())
        .collect();

    let n_threads = 8;
    let rounds = 4;
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let model = Arc::clone(&model);
            let keys = &keys;
            let reference = &reference;
            scope.spawn(move || {
                // Half the threads serve, half go through a prepared handle;
                // all hammer the same shared engine core.
                let handle = (t % 2 == 0).then(|| model.prepare().unwrap());
                let mut out = Vec::new();
                for round in 0..rounds {
                    for (i, key) in keys.iter().enumerate() {
                        let got: Vec<Option<f64>> = match &handle {
                            Some(h) => {
                                h.lookup(key, &mut out).unwrap();
                                out.clone()
                            }
                            None => model.serve(key).unwrap(),
                        };
                        let want = &reference[i];
                        assert_eq!(
                            got.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
                            want.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
                            "thread {t} round {round} key {i}"
                        );
                    }
                }
            });
        }
    });
}

/// `fit_owned` end to end: the owned model keeps the fit's compiled work,
/// crosses a thread boundary, and its prepared handle serves the fitted
/// plan's features — no task tables held anywhere.
#[test]
fn fit_owned_model_serves_from_another_thread() {
    let ds = feataug_datagen::generate_by_name(
        feataug_datagen::one_to_many_names()[0],
        &GenConfig::tiny().with_seed(7),
    )
    .unwrap();
    let task = to_aug_task(&ds);
    let model = FeatAug::new(tiny_cfg(7)).fit_owned(&task).unwrap();
    assert!(!model.plan().is_empty(), "the tiny fit must select queries");
    let evaluations_after_fit = model.engine_stats().evaluations;
    assert!(
        evaluations_after_fit > 0,
        "the owned model must keep the fit's engine counters"
    );

    let key: Vec<Value> = task
        .key_columns
        .iter()
        .map(|k| task.train.value(0, k).unwrap())
        .collect();
    let expected = model.serve(&key).unwrap();
    drop(task); // nothing borrows the task anymore

    let got = std::thread::spawn(move || {
        let handle = model.prepare().unwrap();
        let mut out = Vec::new();
        handle.lookup(&key, &mut out).unwrap();
        out
    })
    .join()
    .unwrap();
    assert_eq!(
        got.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
        expected
            .iter()
            .map(|v| v.map(f64::to_bits))
            .collect::<Vec<_>>()
    );
}

/// `fit_multi_owned` needs no caller-held `sub_tasks` vector: the models
/// stand alone, transform the union onto any table, and survive a thread
/// hop.
#[test]
fn fit_multi_owned_stands_alone() {
    fn relevant(n: usize, name: &str, target: &str) -> Table {
        let mut keys = Vec::new();
        let mut flags = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            for j in 0..4 {
                keys.push(format!("u{i}"));
                let flag = if j % 2 == 0 { target } else { "other" };
                flags.push(flag.to_string());
                values.push(if flag == target {
                    (i % 2) as f64 * 10.0 + j as f64
                } else {
                    j as f64
                });
            }
        }
        let mut t = Table::new(name);
        t.add_column("user_id", Column::from_strings(&keys))
            .unwrap();
        t.add_column("flag", Column::from_strings(&flags)).unwrap();
        t.add_column("value", Column::from_f64s(&values)).unwrap();
        t
    }
    let n = 60;
    let mut train = Table::new("d");
    train
        .add_column(
            "user_id",
            Column::from_strings(&(0..n).map(|i| format!("u{i}")).collect::<Vec<_>>()),
        )
        .unwrap();
    train
        .add_column(
            "label",
            Column::from_i64s(&(0..n).map(|i| (i % 2) as i64).collect::<Vec<_>>()),
        )
        .unwrap();
    let task = MultiAugTask::new(train.clone(), "label", Task::BinaryClassification)
        .with_source(RelevantSource::new(
            relevant(n, "r1", "a"),
            vec!["user_id".into()],
        ))
        .with_source(RelevantSource::new(
            relevant(n, "r2", "b"),
            vec!["user_id".into()],
        ));

    let model = fit_multi_owned(&tiny_cfg(3), &task).unwrap();
    assert_eq!(model.models().len(), 2);
    let on_train = model.transform(&train).unwrap();
    assert!(on_train.num_columns() > train.num_columns());
    drop(task); // the owned multi-model borrows nothing

    // It crosses threads whole.
    let (rows, cols) = std::thread::spawn(move || {
        let again = model.transform(&train).unwrap();
        (again.num_rows(), again.num_columns())
    })
    .join()
    .unwrap();
    assert_eq!(rows, n);
    assert_eq!(cols, on_train.num_columns());
}
