//! Cross-crate property-based tests: invariants that must hold for arbitrary generated datasets
//! and arbitrary sampled queries.

use proptest::prelude::*;
use rand::SeedableRng;

use feataug::encoding::{feature_vector, table_to_dataset};
use feataug::evaluation::evaluate_table;
use feataug::exec::QueryEngine;
use feataug::{QueryCodec, QueryTemplate};
use feataug_datagen::GenConfig;
use feataug_ml::ModelKind;
use feataug_repro::{to_aug_task, to_ml_task};
use feataug_tabular::AggFunc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any randomly sampled query from any dataset's codec must decode, execute, and produce an
    /// augmented table with exactly the training table's row count.
    #[test]
    fn sampled_queries_preserve_training_cardinality(
        seed in 0u64..1000,
        dataset_idx in 0usize..4,
        n_queries in 1usize..6,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let template = QueryTemplate::new(
            vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count],
            task.resolved_agg_columns(),
            task.resolved_predicate_attrs(),
            task.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &task.relevant).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..n_queries {
            let config = codec.space().sample(&mut rng);
            prop_assert!(codec.space().contains(&config));
            let query = codec.decode(&config);
            let (augmented, feature) = query.augment(&task.train, &task.relevant).unwrap();
            prop_assert_eq!(augmented.num_rows(), task.train.num_rows());
            let values = feature_vector(&augmented, &feature);
            prop_assert_eq!(values.len(), task.train.num_rows());
        }
    }

    /// The compiled QueryEngine must be value-identical — bit for bit, including NULL/NaN
    /// placement — to the naive execute-then-left-join path, for arbitrary sampled queries over
    /// arbitrary generated datasets (all fifteen aggregation functions, random predicates and
    /// random group-key subsets flow through the codec sampling).
    #[test]
    fn query_engine_matches_naive_augment_path(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 2usize..10,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        // Aggregate over the numeric defaults plus the categorical predicate
        // attributes (code-valued aggregation exercises the dictionary
        // re-interning the filtered reference path performs).
        let mut agg_columns = task.resolved_agg_columns();
        for attr in task.resolved_predicate_attrs() {
            if task.relevant.dtype(&attr).unwrap() == feataug_tabular::DataType::Categorical {
                agg_columns.push(attr);
            }
        }
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            agg_columns,
            task.resolved_predicate_attrs(),
            task.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &task.relevant).unwrap();
        let engine = QueryEngine::new(&task.train, &task.relevant);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..n_queries {
            let config = codec.space().sample(&mut rng);
            let query = codec.decode(&config);

            let (engine_name, engine_values) = engine.feature(&query).unwrap();
            let (augmented, naive_name) = query.augment(&task.train, &task.relevant).unwrap();
            let naive_values = feature_vector(&augmented, &naive_name);

            prop_assert_eq!(&engine_name, &naive_name);
            prop_assert_eq!(engine_values.len(), naive_values.len());
            for (row, (e, n)) in engine_values.iter().zip(&naive_values).enumerate() {
                prop_assert_eq!(
                    e.to_bits(),
                    n.to_bits(),
                    "row {} differs for `{}` on {}: engine {} vs naive {}",
                    row,
                    query.to_sql("R"),
                    name,
                    e,
                    n
                );
            }
        }
    }

    /// Parallel batch evaluation must be bit-identical — NULL/NaN placement included — to the
    /// serial engine AND to the naive `PredicateQuery::augment` reference, at every worker
    /// count, over randomized query pools on arbitrary generated datasets. Pools are sampled
    /// with repetition-prone codecs, so the engine's feature LRU is exercised too.
    #[test]
    fn batch_evaluation_is_bit_identical_across_thread_counts(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 4usize..16,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            task.resolved_agg_columns(),
            task.resolved_predicate_attrs(),
            task.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &task.relevant).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
        let pool: Vec<_> =
            (0..n_queries).map(|_| codec.decode(&codec.space().sample(&mut rng))).collect();

        // Reference values via the naive execute-then-left-join path.
        let reference: Vec<Vec<f64>> = pool
            .iter()
            .map(|q| {
                let (augmented, fname) = q.augment(&task.train, &task.relevant).unwrap();
                feature_vector(&augmented, &fname)
            })
            .collect();

        // Serial engine path.
        let serial_engine = QueryEngine::new(&task.train, &task.relevant);
        let serial: Vec<(String, Vec<f64>)> =
            pool.iter().map(|q| serial_engine.feature(q).unwrap()).collect();

        for workers in [1usize, 2, 5] {
            let engine = QueryEngine::new(&task.train, &task.relevant);
            let batch = engine.feature_batch_threads(&pool, workers);
            prop_assert_eq!(batch.len(), pool.len());
            for (i, result) in batch.into_iter().enumerate() {
                let (batch_name, batch_vals) = result.unwrap();
                prop_assert_eq!(&batch_name, &serial[i].0);
                prop_assert_eq!(batch_vals.len(), reference[i].len());
                for (row, b) in batch_vals.iter().enumerate() {
                    let s = serial[i].1[row];
                    let r = reference[i][row];
                    prop_assert_eq!(
                        b.to_bits(), s.to_bits(),
                        "workers={}: row {} of `{}` differs from serial engine ({} vs {})",
                        workers, row, pool[i].to_sql("R"), b, s
                    );
                    prop_assert_eq!(
                        b.to_bits(), r.to_bits(),
                        "workers={}: row {} of `{}` differs from naive reference ({} vs {})",
                        workers, row, pool[i].to_sql("R"), b, r
                    );
                }
            }
        }
    }

    /// The aggregation kernels must be bit-identical to the `AggFunc::apply` oracle for all
    /// fifteen functions over adversarial float inputs — signed zeros, NaN payloads of both
    /// signs, infinities, NULLs, single-element groups, all-equal groups and all-NaN groups —
    /// at one worker and at the default worker count.
    #[test]
    fn kernels_match_apply_oracle_on_adversarial_floats(
        seed in 0u64..10_000,
        n_rows in 6usize..48,
        n_keys in 2usize..6,
    ) {
        use feataug::exec::default_workers;
        use feataug::PredicateQuery;
        use feataug_tabular::{Column, Predicate, Table};
        use rand::Rng;

        let palette = [
            Some(0.0),
            Some(-0.0),
            Some(f64::NAN),
            Some(-f64::NAN),
            Some(1.0),
            Some(-1.0),
            Some(f64::INFINITY),
            Some(f64::NEG_INFINITY),
            Some(2.5),
            Some(2.5), // over-weighted so MODE sees real frequency ties
            None,
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut keys: Vec<String> = Vec::new();
        let mut values: Vec<Option<f64>> = Vec::new();
        for i in 0..n_rows {
            keys.push(format!("k{}", i % n_keys));
            values.push(palette[rng.gen_range(0..palette.len())]);
        }
        // Deterministic degenerate groups: all-equal, all-NaN, single-element.
        for _ in 0..3 {
            keys.push("eq".into());
            values.push(Some(3.5));
            keys.push("nan".into());
            values.push(Some(f64::NAN));
        }
        keys.push("one".into());
        values.push(Some(-0.0));

        let mut relevant = Table::new("logs");
        let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
        relevant.add_column("k", Column::from_strs(&key_refs)).unwrap();
        relevant.add_column("v", Column::from_opt_f64s(&values)).unwrap();
        let sel: Vec<i64> = (0..keys.len() as i64).collect();
        relevant.add_column("sel", Column::from_i64s(&sel)).unwrap();

        let mut train = Table::new("users");
        let mut train_keys: Vec<String> = (0..n_keys).map(|i| format!("k{i}")).collect();
        train_keys.extend(["eq".into(), "nan".into(), "one".into(), "unseen".into()]);
        let train_refs: Vec<&str> = train_keys.iter().map(|s| s.as_str()).collect();
        train.add_column("k", Column::from_strs(&train_refs)).unwrap();

        let mid = keys.len() as i64 / 2;
        let predicates = [
            Predicate::True,
            Predicate::ge("sel", mid),
            Predicate::le("sel", mid),
        ];
        let mut pool: Vec<PredicateQuery> = Vec::new();
        for agg in AggFunc::all() {
            for predicate in &predicates {
                pool.push(PredicateQuery {
                    agg: *agg,
                    agg_column: "v".into(),
                    predicate: predicate.clone(),
                    group_keys: vec!["k".into()],
                });
            }
        }

        // Oracle: the reference execute-then-left-join path over (fixed-semantics)
        // `AggFunc::apply`.
        let reference: Vec<Vec<f64>> = pool
            .iter()
            .map(|q| {
                let (augmented, fname) = q.augment(&train, &relevant).unwrap();
                feature_vector(&augmented, &fname)
            })
            .collect();

        for workers in [1usize, default_workers()] {
            let engine = QueryEngine::new(&train, &relevant);
            for (i, result) in engine.feature_batch_threads(&pool, workers).into_iter().enumerate() {
                let (_, vals) = result.unwrap();
                prop_assert_eq!(vals.len(), reference[i].len());
                for (row, (e, r)) in vals.iter().zip(&reference[i]).enumerate() {
                    prop_assert_eq!(
                        e.to_bits(),
                        r.to_bits(),
                        "workers={}: row {} of `{}`: kernel {} vs oracle {}",
                        workers,
                        row,
                        pool[i].to_sql("R"),
                        e,
                        r
                    );
                }
            }
        }
    }

    /// `append_relevant` must be indistinguishable from a full refit: split an arbitrary
    /// generated relevant table into a base plus randomized append batches, warm the
    /// incremental engine's per-group memo *before* the appends (so every delta path —
    /// streaming resume, order-stat merge, universal rescan — must carry state forward), then
    /// compare transforms and point lookups bit-for-bit against a fresh engine compiled over
    /// the concatenated table, at one worker and the default count.
    #[test]
    fn append_relevant_matches_full_refit_bit_for_bit(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 3usize..10,
        n_batches in 1usize..4,
    ) {
        use feataug::exec::default_workers;
        use rand::Rng;

        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            task.resolved_agg_columns(),
            task.resolved_predicate_attrs(),
            task.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &task.relevant).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1a6e57);
        let pool: Vec<_> =
            (0..n_queries).map(|_| codec.decode(&codec.space().sample(&mut rng))).collect();

        // Random cut points split the relevant rows into a base prefix plus
        // up to `n_batches` non-empty append batches.
        let total = task.relevant.num_rows();
        prop_assert!(total > n_batches + 1, "tiny datasets outnumber the batch count");
        let mut cuts: Vec<usize> = (0..n_batches).map(|_| rng.gen_range(1..total)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = vec![0];
        bounds.extend(cuts);
        bounds.push(total);
        let segments: Vec<Vec<usize>> =
            bounds.windows(2).map(|w| (w[0]..w[1]).collect()).collect();
        let base = task.relevant.take(&segments[0]);
        let batches: Vec<_> = segments[1..].iter().map(|idx| task.relevant.take(idx)).collect();

        // Oracle table: base ++ batches through the same concat path — `take`
        // re-interns dictionaries, so the original table is NOT the oracle.
        let mut full = base.clone();
        for batch in &batches {
            full = full.concat(batch).unwrap();
        }
        prop_assert_eq!(full.num_rows(), total);

        for workers in [1usize, default_workers()] {
            let engine = QueryEngine::new(&task.train, &base);
            // Warm every per-group feature before the appends: each append
            // must then carry the whole memo forward through its delta paths
            // rather than handing the next transform a cold cache.
            let warm = engine.transform_threads(&pool, &task.train, workers).unwrap();
            prop_assert_eq!(warm.len(), pool.len());

            for (i, batch) in batches.iter().enumerate() {
                let info = engine.append_relevant(batch).unwrap();
                prop_assert_eq!(info.epoch, (i + 1) as u64);
                prop_assert_eq!(info.appended_rows, batch.num_rows());
            }
            prop_assert_eq!(engine.epoch(), batches.len() as u64);

            let oracle = QueryEngine::new(&task.train, &full);
            let incremental = engine.transform_threads(&pool, &task.train, workers).unwrap();
            let refit = oracle.transform_threads(&pool, &task.train, workers).unwrap();
            for (qi, (inc, want)) in incremental.iter().zip(&refit).enumerate() {
                prop_assert_eq!(inc.len(), want.len());
                for (row, (a, b)) in inc.iter().zip(want).enumerate() {
                    prop_assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "workers={}: row {} of `{}`: incremental {:?} vs refit {:?}",
                        workers, row, pool[qi].to_sql("R"), a, b
                    );
                }
            }

            // Point lookups resolve identically through the appended epochs.
            for query in &pool {
                for row in 0..task.train.num_rows().min(6) {
                    let key: Vec<feataug_tabular::Value> = query
                        .group_keys
                        .iter()
                        .map(|k| task.train.value(row, k).unwrap())
                        .collect();
                    let a = engine.lookup(query, &key).unwrap();
                    let b = oracle.lookup(query, &key).unwrap();
                    prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
                }
            }
        }
    }

    /// Encoding any generated training table yields a dataset with consistent shapes, and the
    /// evaluation protocol returns a metric within its valid range.
    #[test]
    fn encoding_and_evaluation_are_well_formed(
        seed in 0u64..1000,
        dataset_idx in 0usize..6,
    ) {
        let names: Vec<&str> = feataug_datagen::one_to_many_names()
            .iter()
            .chain(feataug_datagen::one_to_one_names())
            .copied()
            .collect();
        let ds = feataug_datagen::generate_by_name(names[dataset_idx], &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_ml_task(ds.task);
        let data = table_to_dataset(&ds.train, &ds.label_column, &ds.key_columns, task);
        prop_assert_eq!(data.len(), ds.train.num_rows());
        prop_assert!(data.n_features() >= 1);

        let result = evaluate_table(&ds.train, &ds.label_column, &ds.key_columns, task, ModelKind::Linear, seed);
        match result.metric {
            feataug_ml::Metric::Auc | feataug_ml::Metric::F1Macro => {
                prop_assert!((0.0..=1.0).contains(&result.value));
            }
            feataug_ml::Metric::Rmse => prop_assert!(result.value >= 0.0),
        }
    }
}
