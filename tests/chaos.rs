//! Chaos suite: fault injection against the serving stack (PR 6,
//! "survivable serving").
//!
//! Every test here arms a named failpoint (see `feataug::failpoint`) to force
//! a panic, a delay, or a genuinely poisoned lock somewhere inside the engine
//! or the serving tier, then asserts the two survivability invariants:
//!
//! 1. **Blast radius is one request.** A worker panicking on one item fails
//!    that item with a typed [`EngineError::WorkerPanic`]; every other item's
//!    answer is bit-identical to a clean serial engine's.
//! 2. **Nothing is permanently broken.** After the fault — including a memo
//!    map poisoned mid-insert — the same engine keeps answering correctly.
//!
//! Failpoints are process-global, so the tests serialize on [`CHAOS_LOCK`]
//! and reset the registry on entry and exit. Build with
//! `--features failpoints` (CI runs this binary in its own job).
#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use feataug::failpoint::{self, Action};
use feataug::pipeline::AugModel;
use feataug::{
    AugPlan, EngineError, PlannedQuery, PredicateQuery, QueryCodec, QueryEngine, QueryTemplate,
    ServingTier, TierConfig, TierError,
};
use feataug_datagen::GenConfig;
use feataug_repro::to_aug_task;
use feataug_tabular::{AggFunc, Value};
use rand::SeedableRng;

/// Serializes the chaos tests: the failpoint registry is process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// A guard that resets every failpoint on entry and on drop (even when the
/// test body panics), so one failing test cannot leak armed failpoints into
/// the next.
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ChaosGuard {
    fn acquire() -> ChaosGuard {
        let guard = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        failpoint::reset();
        ChaosGuard(guard)
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        failpoint::reset();
    }
}

fn dataset(seed: u64) -> feataug_datagen::SyntheticDataset {
    feataug_datagen::generate_by_name(
        feataug_datagen::one_to_many_names()[0],
        &GenConfig::tiny().with_seed(seed),
    )
    .unwrap()
}

/// A randomized query pool over the dataset's codec (distinct queries, so a
/// failed item maps to exactly one pool slot).
fn random_pool(ds: &feataug_datagen::SyntheticDataset, seed: u64, n: usize) -> Vec<PredicateQuery> {
    let template = QueryTemplate::new(
        AggFunc::all().to_vec(),
        ds.agg_columns.clone(),
        ds.predicate_attrs.clone(),
        ds.key_columns.clone(),
    );
    let codec = QueryCodec::build(&template, &ds.relevant).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pool = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while pool.len() < n {
        let query = codec.decode(&codec.space().sample(&mut rng));
        if seen.insert(format!("{query:?}")) {
            pool.push(query);
        }
    }
    pool
}

fn plan_from(ds: &feataug_datagen::SyntheticDataset, pool: &[PredicateQuery]) -> AugPlan {
    AugPlan::new(
        ds.relevant.name(),
        ds.key_columns.clone(),
        pool.iter()
            .map(|query| PlannedQuery {
                query: query.clone(),
                loss: 0.0,
            })
            .collect(),
    )
}

fn bits(values: &[Option<f64>]) -> Vec<Option<u64>> {
    values.iter().map(|v| v.map(f64::to_bits)).collect()
}

/// A kernel panic under 8-thread batch evaluation fails exactly the hit
/// items; every surviving item is bit-identical to a clean serial engine.
#[test]
fn kernel_panic_fails_only_the_affected_request() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(41);
    let pool = random_pool(&ds, 0xc0de, 12);

    // Clean serial reference first (its engine never sees a failpoint).
    let clean = QueryEngine::new(&ds.train, &ds.relevant);
    let reference: Vec<Vec<Option<f64>>> = pool
        .iter()
        .map(|query| clean.evaluate(query).unwrap())
        .collect();

    failpoint::set_times("exec.kernel", Action::Panic, 1);
    let engine = QueryEngine::new(&ds.train, &ds.relevant);
    let results = engine.evaluate_batch_threads(&pool, 8);
    assert_eq!(failpoint::hits("exec.kernel"), 1);

    let mut failed = 0;
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(values) => assert_eq!(bits(values), bits(&reference[i]), "survivor {i} diverged"),
            Err(EngineError::WorkerPanic { context, message }) => {
                failed += 1;
                assert_eq!(*context, "batch evaluation");
                assert!(message.contains("exec.kernel"), "got: {message}");
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }
    assert_eq!(failed, 1, "exactly the hit request fails");

    // The engine is not poisoned: re-evaluating the failed pool serially on
    // the SAME engine now answers everything, bit-identical to the reference.
    for (i, query) in pool.iter().enumerate() {
        assert_eq!(bits(&engine.evaluate(query).unwrap()), bits(&reference[i]));
    }
}

/// A panic raised while the group-index memo map's write lock is held
/// genuinely poisons that `RwLock`; the engine must recover (the map is
/// never left mid-mutation) and keep serving the same answers.
#[test]
fn poisoned_memo_map_recovers() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(43);
    let pool = random_pool(&ds, 0xdead, 4);

    let clean = QueryEngine::new(&ds.train, &ds.relevant);
    let reference: Vec<Vec<Option<f64>>> = pool
        .iter()
        .map(|query| clean.evaluate(query).unwrap())
        .collect();

    // Fire inside the write-lock scope. The contained batch worker unwinds
    // with the guard held — the poison is real, not simulated.
    failpoint::set_times("exec.index.insert", Action::Panic, 1);
    let engine = QueryEngine::new(&ds.train, &ds.relevant);
    let first = engine.evaluate_batch_threads(&pool[..1], 1);
    assert_eq!(failpoint::hits("exec.index.insert"), 1);
    assert!(
        matches!(first[0], Err(EngineError::WorkerPanic { .. })),
        "the poisoning request itself fails typed: {first:?}"
    );

    // Same engine, poisoned lock: every later evaluation recovers and the
    // answers match the clean engine bit for bit.
    for (i, query) in pool.iter().enumerate() {
        assert_eq!(
            bits(&engine.evaluate(query).unwrap()),
            bits(&reference[i]),
            "post-poison answer {i} diverged"
        );
    }
}

/// A panic while *compiling* a group index (the `exec.index.build` failpoint,
/// which fires outside any engine lock) fails only the triggering request,
/// poisons nothing, and the same engine rebuilds the index on the next call.
#[test]
fn index_build_panic_is_contained() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(53);
    let pool = random_pool(&ds, 0xbead, 4);

    let clean = QueryEngine::new(&ds.train, &ds.relevant);
    let reference: Vec<Vec<Option<f64>>> = pool
        .iter()
        .map(|query| clean.evaluate(query).unwrap())
        .collect();

    failpoint::set_times("exec.index.build", Action::Panic, 1);
    let engine = QueryEngine::new(&ds.train, &ds.relevant);
    let first = engine.evaluate_batch_threads(&pool[..1], 1);
    assert_eq!(failpoint::hits("exec.index.build"), 1);
    assert!(
        matches!(first[0], Err(EngineError::WorkerPanic { .. })),
        "the hit request fails typed: {first:?}"
    );

    // No lock was held at the failpoint, so nothing is poisoned: the same
    // engine rebuilds the index and answers bit-identically from here on.
    for (i, query) in pool.iter().enumerate() {
        assert_eq!(
            bits(&engine.evaluate(query).unwrap()),
            bits(&reference[i]),
            "post-panic answer {i} diverged"
        );
    }
}

/// A gather panic on the transform path fails only the hit query's column;
/// the other planned features still come back bit-identical.
#[test]
fn transform_gather_panic_is_contained() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(47);
    let pool = random_pool(&ds, 0xfeed, 6);

    let clean = QueryEngine::new(&ds.train, &ds.relevant);
    let reference = clean.transform(&pool, &ds.train).unwrap();

    failpoint::set_times("exec.gather", Action::Panic, 1);
    let engine = QueryEngine::new(&ds.train, &ds.relevant);
    let err = engine
        .transform(&pool, &ds.train)
        .expect_err("one gather panicked, the batch transform must surface it");
    assert!(
        matches!(err, EngineError::WorkerPanic { context, .. } if context == "transform"),
        "typed worker panic expected"
    );

    // The engine survives: the same transform on the same engine now
    // succeeds and matches the clean run.
    let again = engine.transform(&pool, &ds.train).unwrap();
    for (i, (got, want)) in again.iter().zip(&reference).enumerate() {
        assert_eq!(bits(got), bits(want), "query {i} diverged after recovery");
    }
}

/// 8 threads hammer one serving tier while lookups randomly panic under it:
/// the tier never crashes, failed requests surface typed, survivors are
/// bit-identical to a clean handle, and the tier still answers afterwards.
#[test]
fn tier_survives_panicking_lookups_under_contention() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(53);
    let task = to_aug_task(&ds);
    let pool = random_pool(&ds, 0xbeef, 4);
    let plan = plan_from(&ds, &pool);

    let model = AugModel::compile_shared(plan, task.train.clone(), task.relevant.clone())
        .expect("plan compiles");
    let handle = std::sync::Arc::new(model.prepare().unwrap());

    let keys: Vec<Vec<Value>> = (0..task.train.num_rows().min(32))
        .map(|row| {
            task.key_columns
                .iter()
                .map(|k| task.train.value(row, k).unwrap())
                .collect()
        })
        .collect();
    // Clean reference before arming anything (warms the shared engine too,
    // so the panics below hit pure cache-read lookups — the serving shape).
    let reference: Vec<Vec<Option<f64>>> = keys
        .iter()
        .map(|k| {
            let mut out = Vec::new();
            handle.lookup(k, &mut out).unwrap();
            out
        })
        .collect();

    let tier = ServingTier::new(
        std::sync::Arc::clone(&handle),
        TierConfig {
            workers: 4,
            ..TierConfig::default()
        },
    );
    failpoint::set_times("serving.lookup", Action::Panic, 6);

    let panics = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let tier = &tier;
            let keys = &keys;
            let reference = &reference;
            let panics = &panics;
            scope.spawn(move || {
                for round in 0..4 {
                    for (i, key) in keys.iter().enumerate() {
                        match tier.lookup(key) {
                            Ok(row) => assert_eq!(
                                bits(&row),
                                bits(&reference[i]),
                                "thread {t} round {round} key {i} diverged"
                            ),
                            Err(TierError::Engine(EngineError::WorkerPanic {
                                message, ..
                            })) => {
                                assert!(message.contains("serving.lookup"), "got: {message}");
                                panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected tier error: {other:?}"),
                        }
                    }
                }
            });
        }
    });

    let contained = panics.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(contained, 6, "every armed panic surfaced as a typed error");
    assert_eq!(tier.stats().worker_panics, 6);
    // The tier's workers are all still alive and serving.
    assert_eq!(bits(&tier.lookup(&keys[0]).unwrap()), bits(&reference[0]));
}

/// Deadlines that expire while requests sit behind a stalled worker batch:
/// degradation answers the documented all-NULL row, strict mode errors —
/// and in both modes the process, the tier and later requests survive.
#[test]
fn stalled_batches_expire_deadlines_gracefully() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(59);
    let task = to_aug_task(&ds);
    let pool = random_pool(&ds, 0xaaaa, 3);
    let plan = plan_from(&ds, &pool);
    let model = AugModel::compile_shared(plan, task.train.clone(), task.relevant.clone())
        .expect("plan compiles");
    let handle = std::sync::Arc::new(model.prepare().unwrap());

    let key: Vec<Value> = task
        .key_columns
        .iter()
        .map(|k| task.train.value(0, k).unwrap())
        .collect();
    let mut want = Vec::new();
    handle.lookup(&key, &mut want).unwrap();

    // Every batch stalls 30ms; a 1ms deadline is guaranteed to expire while
    // its request waits. One worker serializes the queue behind the stall.
    failpoint::set("tier.batch", Action::Delay(Duration::from_millis(30)));
    let tier = ServingTier::new(
        std::sync::Arc::clone(&handle),
        TierConfig {
            workers: 1,
            max_batch: 1,
            ..TierConfig::default()
        },
    );
    let pending: Vec<_> = (0..8)
        .map(|_| {
            tier.submit_deadline(key.clone(), Some(Duration::from_millis(1)))
                .unwrap()
        })
        .collect();
    // Under degradation every answer is Ok; expired ones are all-NULL.
    let degraded = pending
        .into_iter()
        .map(|p| p.wait().unwrap())
        .filter(|row| row.iter().all(|v| v.is_none()))
        .count();
    assert!(
        degraded >= 7,
        "with a 30ms stall per batch, nearly every 1ms-deadline request must degrade (got {degraded}/8)"
    );
    assert_eq!(tier.stats().degraded, degraded);

    // Disarm: the same tier immediately serves real answers again.
    failpoint::clear("tier.batch");
    assert_eq!(bits(&tier.lookup(&key).unwrap()), bits(&want));

    // Strict mode: the expiry is a typed error instead of a NULL row.
    failpoint::set("tier.batch", Action::Delay(Duration::from_millis(30)));
    let strict = ServingTier::new(
        std::sync::Arc::clone(&handle),
        TierConfig {
            workers: 1,
            max_batch: 1,
            degrade_on_deadline: false,
            ..TierConfig::default()
        },
    );
    let err = strict
        .lookup_deadline(&key, Duration::from_millis(1))
        .unwrap_err();
    assert!(matches!(err, TierError::DeadlineExceeded), "got {err:?}");
    failpoint::clear("tier.batch");
    assert_eq!(bits(&strict.lookup(&key).unwrap()), bits(&want));
}

/// Flooding a tiny tier behind a stalled worker trips admission control:
/// some requests shed with a typed error, every admitted request still
/// answers correctly, and the counters reconcile exactly.
#[test]
fn overload_sheds_at_admission_and_admitted_requests_survive() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(61);
    let task = to_aug_task(&ds);
    let pool = random_pool(&ds, 0xbbbb, 3);
    let plan = plan_from(&ds, &pool);
    let model = AugModel::compile_shared(plan, task.train.clone(), task.relevant.clone())
        .expect("plan compiles");
    let handle = std::sync::Arc::new(model.prepare().unwrap());

    let key: Vec<Value> = task
        .key_columns
        .iter()
        .map(|k| task.train.value(1, k).unwrap())
        .collect();
    let mut want = Vec::new();
    handle.lookup(&key, &mut want).unwrap();

    failpoint::set("tier.batch", Action::Delay(Duration::from_millis(5)));
    let tier = ServingTier::new(
        std::sync::Arc::clone(&handle),
        TierConfig {
            workers: 1,
            queue_capacity: 4,
            shed_watermark: 2,
            max_batch: 1,
            ..TierConfig::default()
        },
    );

    let mut pending = Vec::new();
    let mut shed = 0;
    for _ in 0..64 {
        match tier.submit(key.clone()) {
            Ok(p) => pending.push(p),
            Err(TierError::Shed { depth }) => {
                assert!(depth >= 2, "shed below the watermark (depth {depth})");
                shed += 1;
            }
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
    }
    assert!(shed > 0, "the flood must trip admission control");
    let admitted = pending.len();
    for p in pending {
        assert_eq!(bits(&p.wait().unwrap()), bits(&want));
    }
    let stats = tier.stats();
    assert_eq!(stats.submitted, 64);
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.answered, admitted);
}

/// A panic forced mid-`append_relevant` must be contained: the append fails
/// with a typed [`EngineError::WorkerPanic`], the published epoch never
/// moves, 8 concurrent reader threads stay bit-identical to the pre-append
/// reference throughout, and a clean retry afterwards publishes the next
/// epoch with values identical to a full refit over the concatenated table.
///
/// With `overlap_delay`, `exec.ingest.build` stalls the in-flight build for
/// 20ms first, so the readers demonstrably overlap a half-built epoch.
fn append_panic_keeps_prior_epoch_serving(fail_at: &str, overlap_delay: bool) {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(71);
    let task = to_aug_task(&ds);
    let pool = random_pool(&ds, 0xd00d, 4);
    let plan = plan_from(&ds, &pool);
    let model = AugModel::compile_shared(plan.clone(), task.train.clone(), task.relevant.clone())
        .expect("plan compiles");
    let handle = model.prepare().unwrap();

    let keys: Vec<Vec<Value>> = (0..task.train.num_rows().min(16))
        .map(|row| {
            task.key_columns
                .iter()
                .map(|k| task.train.value(row, k).unwrap())
                .collect()
        })
        .collect();
    // Clean reference before arming anything (also warms the per-group memo,
    // so the failed append has real delta state to carry — and to discard).
    let reference: Vec<Vec<Option<f64>>> = keys
        .iter()
        .map(|k| {
            let mut out = Vec::new();
            handle.lookup(k, &mut out).unwrap();
            out
        })
        .collect();

    let batch_rows: Vec<usize> = (0..task.relevant.num_rows().min(24)).collect();
    let batch = task.relevant.take(&batch_rows);

    if overlap_delay {
        failpoint::set(
            "exec.ingest.build",
            Action::Delay(Duration::from_millis(20)),
        );
    }
    failpoint::set_times(fail_at, Action::Panic, 1);

    let looked = std::sync::atomic::AtomicUsize::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (stop, looked) = (&stop, &looked);
        for t in 0..8 {
            let handle = &handle;
            let keys = &keys;
            let reference = &reference;
            scope.spawn(move || {
                let mut out = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for (i, key) in keys.iter().enumerate() {
                        handle.lookup(key, &mut out).unwrap();
                        assert_eq!(
                            bits(&out),
                            bits(&reference[i]),
                            "thread {t} key {i} diverged while an append was failing"
                        );
                        looked.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
        let err = model
            .append_relevant(&batch)
            .expect_err("the armed append must fail");
        assert!(
            matches!(err, EngineError::WorkerPanic { context, .. } if context == "append_relevant"),
            "typed append panic expected"
        );
        assert_eq!(
            model.epoch(),
            0,
            "a failed append must not publish an epoch"
        );
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(failpoint::hits(fail_at), 1);
    assert!(
        looked.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "readers must have served during the append"
    );
    failpoint::reset();

    // The prior epoch is still the one serving, bit for bit.
    assert_eq!(handle.epoch(), 0);
    for (i, key) in keys.iter().enumerate() {
        let mut out = Vec::new();
        handle.lookup(key, &mut out).unwrap();
        assert_eq!(
            bits(&out),
            bits(&reference[i]),
            "post-panic answer {i} diverged"
        );
    }

    // Nothing is wedged: a clean retry publishes epoch 1 and the handle
    // follows it — identical to a full refit over the concatenated table.
    let info = model.append_relevant(&batch).unwrap();
    assert_eq!(info.epoch, 1);
    assert_eq!(info.appended_rows, batch.num_rows());
    assert_eq!(model.epoch(), 1);
    let full = std::sync::Arc::new(task.relevant.concat(&batch).unwrap());
    let oracle = AugModel::compile_shared(plan, task.train.clone(), full).expect("plan compiles");
    let oracle_handle = oracle.prepare().unwrap();
    for key in &keys {
        let mut got = Vec::new();
        handle.lookup(key, &mut got).unwrap();
        let mut want = Vec::new();
        oracle_handle.lookup(key, &mut want).unwrap();
        assert_eq!(
            bits(&got),
            bits(&want),
            "appended epoch diverged from a full refit"
        );
    }
    assert_eq!(handle.epoch(), 1);
}

/// Panic at the very start of the epoch build (`exec.ingest.build`).
#[test]
fn append_panic_at_build_leaves_prior_epoch_serving() {
    append_panic_keeps_prior_epoch_serving("exec.ingest.build", false);
}

/// Panic at the end of the build, just before the publish swap
/// (`exec.ingest.publish`) — the fully-assembled successor core is dropped
/// unpublished. A 20ms build stall guarantees readers overlap the in-flight
/// append.
#[test]
fn append_panic_at_publish_leaves_prior_epoch_serving() {
    append_panic_keeps_prior_epoch_serving("exec.ingest.publish", true);
}

/// Hot-swap under fire: while 4 threads stream lookups, a background thread
/// repeatedly installs recompiled models. Every answer must come from one
/// coherent model (old bits or new bits, never a mixture), and the final
/// generation must match the number of installs.
#[test]
fn hot_swap_under_concurrent_load_is_atomic() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(67);
    let task = to_aug_task(&ds);
    let pool = random_pool(&ds, 0xcccc, 3);

    // Two models over the SAME tables but different plans (the second drops
    // one query), so old/new answers differ in length — an incoherent read
    // would be instantly visible.
    let plan_a = plan_from(&ds, &pool);
    let plan_b = plan_from(&ds, &pool[..2]);
    let handle_a = std::sync::Arc::new(
        AugModel::compile_shared(plan_a, task.train.clone(), task.relevant.clone())
            .expect("plan compiles")
            .prepare()
            .unwrap(),
    );
    let handle_b = std::sync::Arc::new(
        AugModel::compile_shared(plan_b, task.train.clone(), task.relevant.clone())
            .expect("plan compiles")
            .prepare()
            .unwrap(),
    );

    let key: Vec<Value> = task
        .key_columns
        .iter()
        .map(|k| task.train.value(2, k).unwrap())
        .collect();
    let mut want_a = Vec::new();
    handle_a.lookup(&key, &mut want_a).unwrap();
    let mut want_b = Vec::new();
    handle_b.lookup(&key, &mut want_b).unwrap();
    assert_ne!(want_a.len(), want_b.len());

    let tier = ServingTier::new(std::sync::Arc::clone(&handle_a), TierConfig::default());
    let installs = 20;
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        for _ in 0..4 {
            let tier = &tier;
            let (want_a, want_b) = (&want_a, &want_b);
            let key = &key;
            scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let row = tier.lookup(key).unwrap();
                    let coherent = bits(&row) == bits(want_a) || bits(&row) == bits(want_b);
                    assert!(coherent, "lookup saw a torn model: {row:?}");
                }
            });
        }
        for i in 0..installs {
            let next = if i % 2 == 0 { &handle_b } else { &handle_a };
            tier.install(std::sync::Arc::clone(next));
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(tier.generation(), installs);
    assert_eq!(tier.stats().generation, installs);
}

/// A routable query pool: like [`random_pool`], but every query groups by
/// the first key column, so a [`ShardRouter`] has a non-empty shard-key
/// intersection to route on.
fn routable_pool(
    ds: &feataug_datagen::SyntheticDataset,
    seed: u64,
    n: usize,
) -> Vec<PredicateQuery> {
    let anchor = &ds.key_columns[0];
    random_pool(ds, seed, n)
        .into_iter()
        .map(|mut query| {
            if !query.group_keys.contains(anchor) {
                query.group_keys.insert(0, anchor.clone());
            }
            query
        })
        .collect()
}

/// A deadline that fires while a kernel checkpoint stalls preempts the work
/// right there — mid-kernel, not at the batch boundary. Plain traffic (no
/// token) never even evaluates the `kernel.cancel` failpoint, so an armed
/// stall cannot perturb it. The tier maps the preemption into its existing
/// degradation policy: all-NULL under degradation (counted in
/// `TierStats::cancelled`), a typed error in strict mode.
#[test]
fn tripped_deadline_preempts_stalled_kernel_mid_work() {
    use std::time::Instant;
    let _guard = ChaosGuard::acquire();
    let ds = dataset(73);
    let task = to_aug_task(&ds);
    let pool = random_pool(&ds, 0xce11, 3);

    let clean = QueryEngine::new(&ds.train, &ds.relevant);
    let reference = clean.evaluate(&pool[0]).unwrap();

    // Engine level: every cancellation checkpoint stalls 30ms, so a 2ms
    // deadline has tripped by the first poll — the aggregation abandons
    // mid-kernel with a typed error.
    failpoint::set("kernel.cancel", Action::Delay(Duration::from_millis(30)));
    let engine = QueryEngine::new(&ds.train, &ds.relevant);
    let token =
        feataug_tabular::CancelToken::with_deadline(Instant::now() + Duration::from_millis(2));
    let err = engine.evaluate_cancel(&pool[0], &token).unwrap_err();
    assert!(matches!(err, EngineError::Cancelled), "got {err:?}");
    assert!(failpoint::hits("kernel.cancel") > 0);

    // Plain traffic is token-free: the checkpoint returns before evaluating
    // the failpoint, so the armed stall neither delays nor perturbs it.
    let hits_before = failpoint::hits("kernel.cancel");
    assert_eq!(bits(&engine.evaluate(&pool[0]).unwrap()), bits(&reference));
    assert_eq!(failpoint::hits("kernel.cancel"), hits_before);

    // Disarmed, a generous deadline runs to completion bit-identically.
    failpoint::clear("kernel.cancel");
    let generous =
        feataug_tabular::CancelToken::with_deadline(Instant::now() + Duration::from_secs(60));
    assert_eq!(
        bits(&engine.evaluate_cancel(&pool[0], &generous).unwrap()),
        bits(&reference)
    );

    // Tier level: warm serving probes poll the same checkpoints. A 50ms
    // stall against a 10ms deadline preempts the very first probe.
    let plan = plan_from(&ds, &pool);
    let model = AugModel::compile_shared(plan, task.train.clone(), task.relevant.clone())
        .expect("plan compiles");
    let handle = std::sync::Arc::new(model.prepare().unwrap());
    let key: Vec<Value> = task
        .key_columns
        .iter()
        .map(|k| task.train.value(0, k).unwrap())
        .collect();
    let mut want = Vec::new();
    handle.lookup(&key, &mut want).unwrap();

    failpoint::set("kernel.cancel", Action::Delay(Duration::from_millis(50)));
    let tier = ServingTier::new(
        std::sync::Arc::clone(&handle),
        TierConfig {
            workers: 1,
            max_batch: 1,
            ..TierConfig::default()
        },
    );
    let row = tier
        .lookup_deadline(&key, Duration::from_millis(10))
        .unwrap();
    assert!(
        row.iter().all(|v| v.is_none()),
        "a preempted request degrades to the all-NULL row, got {row:?}"
    );
    let stats = tier.stats();
    assert!(
        stats.cancelled >= 1,
        "preemption must be counted: {stats:?}"
    );
    assert!(stats.degraded >= stats.cancelled);
    // A deadline-free request on the same tier is untouched by the stall.
    assert_eq!(bits(&tier.lookup(&key).unwrap()), bits(&want));

    // Strict mode surfaces the same preemption as a typed error.
    let strict = ServingTier::new(
        std::sync::Arc::clone(&handle),
        TierConfig {
            workers: 1,
            max_batch: 1,
            degrade_on_deadline: false,
            ..TierConfig::default()
        },
    );
    let err = strict
        .lookup_deadline(&key, Duration::from_millis(10))
        .unwrap_err();
    assert!(matches!(err, TierError::DeadlineExceeded), "got {err:?}");
    assert!(strict.stats().cancelled >= 1);
    failpoint::clear("kernel.cancel");
    assert_eq!(
        bits(
            &strict
                .lookup_deadline(&key, Duration::from_secs(60))
                .unwrap()
        ),
        bits(&want)
    );
}

/// A panicking shard fails only the requests it owns: under 8-thread tier
/// load every armed `shard.route` panic surfaces as one typed per-request
/// error, every survivor is bit-identical to the warm reference, and once
/// the arm is exhausted every shard serves again. The router-level lookup
/// contains the same panic without any tier around it.
#[test]
fn shard_route_panic_fails_only_owned_requests() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(67);
    let task = to_aug_task(&ds);
    let pool = routable_pool(&ds, 0xdddd, 4);
    let plan = plan_from(&ds, &pool);
    let router =
        feataug::ShardRouter::build_for_plan(task.train.clone(), &ds.relevant, &plan, 3).unwrap();
    let handle =
        std::sync::Arc::new(feataug::ShardedServingHandle::prepare(&router, &plan).unwrap());

    // Keys spanning every shard; warm reference answers before arming.
    let keys: Vec<Vec<Value>> = (0..task.train.num_rows().min(12))
        .map(|row| {
            task.key_columns
                .iter()
                .map(|k| task.train.value(row, k).unwrap())
                .collect()
        })
        .collect();
    let reference: Vec<Vec<Option<f64>>> = keys
        .iter()
        .map(|k| {
            let mut out = Vec::new();
            handle.lookup(k, &mut out).unwrap();
            out
        })
        .collect();

    let tier = ServingTier::new(
        std::sync::Arc::clone(&handle),
        TierConfig {
            workers: 4,
            ..TierConfig::default()
        },
    );
    failpoint::set_times("shard.route", Action::Panic, 6);

    let panics = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let tier = &tier;
            let keys = &keys;
            let reference = &reference;
            let panics = &panics;
            scope.spawn(move || {
                for round in 0..4 {
                    for (i, key) in keys.iter().enumerate() {
                        match tier.lookup(key) {
                            Ok(row) => assert_eq!(
                                bits(&row),
                                bits(&reference[i]),
                                "thread {t} round {round} key {i} diverged"
                            ),
                            Err(TierError::Engine(EngineError::WorkerPanic {
                                message, ..
                            })) => {
                                assert!(message.contains("shard.route"), "got: {message}");
                                panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected tier error: {other:?}"),
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        panics.load(std::sync::atomic::Ordering::Relaxed),
        6,
        "every armed panic fails exactly one owned request"
    );
    assert_eq!(tier.stats().worker_panics, 6);

    // Arm exhausted: every key — every shard — serves again, bit-identical.
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(bits(&tier.lookup(key).unwrap()), bits(&reference[i]));
    }

    // Router-level containment, no tier in sight: the owning shard's panic
    // becomes a typed error and the next request succeeds.
    failpoint::set_times("shard.route", Action::Panic, 1);
    let query = &pool[0];
    let key: Vec<Value> = query
        .group_keys
        .iter()
        .map(|k| task.train.value(0, k).unwrap())
        .collect();
    let err = router.lookup(query, &key).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::WorkerPanic {
                context: "shard route",
                ..
            }
        ),
        "got {err:?}"
    );
    router.lookup(query, &key).unwrap();
}

/// A panicking sharded append aborts the whole batch before any shard's
/// sub-batch dispatches: the router generation stays put, pre-append answers
/// keep serving, and a plain retry applies the batch — after which the
/// router is bit-identical to an unsharded engine fed the same batch.
#[test]
fn shard_append_panic_aborts_batch_and_retry_succeeds() {
    let _guard = ChaosGuard::acquire();
    let ds = dataset(71);
    let task = to_aug_task(&ds);
    let pool = routable_pool(&ds, 0xeeee, 3);
    let plan = plan_from(&ds, &pool);

    let n = ds.relevant.num_rows();
    let split = (n * 2 / 3).max(1);
    let base = ds.relevant.take(&(0..split).collect::<Vec<_>>());
    let batch = ds.relevant.take(&(split..n).collect::<Vec<_>>());
    assert!(batch.num_rows() > 0, "the tiny dataset must leave a batch");

    let unsharded = QueryEngine::new(&ds.train, &base);
    unsharded.append_relevant(&batch).unwrap();
    let want = unsharded.transform(&pool, &ds.train).unwrap();

    let router = feataug::ShardRouter::build_for_plan(task.train.clone(), &base, &plan, 3).unwrap();
    let handle =
        std::sync::Arc::new(feataug::ShardedServingHandle::prepare(&router, &plan).unwrap());
    let key: Vec<Value> = task
        .key_columns
        .iter()
        .map(|k| task.train.value(0, k).unwrap())
        .collect();
    let mut before = Vec::new();
    handle.lookup(&key, &mut before).unwrap();
    let before = before.clone();

    failpoint::set_times("shard.append", Action::Panic, 1);
    let err = router.append_relevant(&batch).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::WorkerPanic {
                context: "shard append",
                ..
            }
        ),
        "got {err:?}"
    );
    assert_eq!(
        router.generation(),
        0,
        "a failed batch must not bump the generation"
    );
    let mut after = Vec::new();
    handle.lookup(&key, &mut after).unwrap();
    assert_eq!(
        bits(&before),
        bits(&after),
        "pre-append answers keep serving"
    );

    // The arm is spent: a plain retry applies the whole batch.
    let epoch = router.append_relevant(&batch).unwrap();
    assert_eq!(epoch.generation, 1);
    assert_eq!(epoch.appended_rows, batch.num_rows());
    let got = router.transform(&pool, &ds.train).unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(
            bits(g),
            bits(w),
            "post-retry answers match the unsharded engine"
        );
    }
}
