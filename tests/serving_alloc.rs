//! The acceptance gate of the prepared serving path:
//! `ServingHandle::lookup` performs **zero heap allocations** — and therefore
//! zero `Debug`/SQL rendering and zero `Value` clones, all of which allocate
//! — on the warm path.
//!
//! Enforced with a counting global allocator. This file is its own test
//! binary and holds exactly one `#[test]`, so no sibling test can allocate
//! concurrently; counting is additionally gated per-thread (a
//! const-initialized thread-local, which itself never allocates), so
//! allocator traffic from the harness's other threads can never leak into
//! the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use feataug::pipeline::AugModel;
use feataug::{AugPlan, PlannedQuery, PredicateQuery};
use feataug_tabular::{AggFunc, Column, Predicate, Table, Value};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAllocator;

// SAFETY: defers entirely to `System`; the bookkeeping around it is an atomic
// increment plus a const-initialized thread-local read (neither allocates).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Run `f` with this thread's allocations counted; returns how many the
/// closure performed.
fn count_allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_prepared_lookup_is_allocation_free() {
    // A model mixing key subsets, predicate shapes and aggregate families —
    // every hot-path branch of the handle (multi-column probes, categorical
    // and integer atomizers, NULL slots) gets exercised.
    let mut train = Table::new("users");
    train
        .add_column("cname", Column::from_strs(&["a", "b", "c"]))
        .unwrap();
    train
        .add_column("uid", Column::from_i64s(&[1, 2, 9]))
        .unwrap();
    let mut relevant = Table::new("logs");
    relevant
        .add_column("cname", Column::from_strs(&["a", "a", "b", "b"]))
        .unwrap();
    relevant
        .add_column("uid", Column::from_i64s(&[1, 1, 2, 2]))
        .unwrap();
    relevant
        .add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
        .unwrap();
    relevant
        .add_column("department", Column::from_strs(&["E", "H", "E", "E"]))
        .unwrap();
    let q = |agg: AggFunc, predicate: Predicate, keys: &[&str]| PlannedQuery {
        query: PredicateQuery {
            agg,
            agg_column: "pprice".into(),
            predicate,
            group_keys: keys.iter().map(|s| s.to_string()).collect(),
        },
        loss: 0.0,
    };
    let plan = AugPlan::new(
        "logs",
        vec!["cname".into(), "uid".into()],
        vec![
            q(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]),
            q(AggFunc::Avg, Predicate::True, &["cname", "uid"]),
            q(AggFunc::Median, Predicate::True, &["uid"]),
            q(AggFunc::Count, Predicate::ge("pprice", 15.0), &["cname"]),
        ],
    );
    let model = AugModel::compile(plan, &train, &relevant).expect("plan compiles");
    let handle = model.prepare().expect("prepare");

    // Keys built before counting starts: seen, partially seen, unseen, NULL
    // and type-mismatched — misses must be as allocation-free as hits.
    let keys: Vec<Vec<Value>> = vec![
        vec![Value::Str("a".into()), Value::Int(1)],
        vec![Value::Str("b".into()), Value::Int(2)],
        vec![Value::Str("b".into()), Value::Int(777)],
        vec![Value::Str("zz".into()), Value::Int(777)],
        vec![Value::Null, Value::Int(2)],
        vec![Value::Int(3), Value::Str("a".into())],
    ];
    let mut out: Vec<Option<f64>> = Vec::new();

    // Warm-up: pays the output buffer's one allocation and proves the
    // answers themselves.
    handle.lookup(&keys[0], &mut out).unwrap();
    assert_eq!(out, vec![Some(10.0), Some(15.0), Some(15.0), Some(1.0)]);
    for key in &keys {
        handle.lookup(key, &mut out).unwrap();
    }

    // The gate: thousands of warm lookups, zero allocations.
    let allocations = count_allocations(|| {
        for _ in 0..2_000 {
            for key in &keys {
                handle.lookup(key, &mut out).unwrap();
            }
        }
    });
    assert_eq!(
        allocations, 0,
        "ServingHandle::lookup allocated on the warm path"
    );

    // Sanity-check the harness itself: the counter does see allocations.
    let observed = count_allocations(|| {
        let v: Vec<u64> = (0..64).collect();
        std::hint::black_box(v);
    });
    assert!(
        observed > 0,
        "the counting allocator must observe a straightforward Vec allocation"
    );

    // And the answers after the counted run are still right.
    handle.lookup(&keys[1], &mut out).unwrap();
    assert_eq!(out, vec![Some(70.0), Some(35.0), Some(35.0), Some(2.0)]);
    handle.lookup(&keys[3], &mut out).unwrap();
    assert_eq!(out, vec![None, None, None, None]);
}
