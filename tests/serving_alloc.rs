//! The acceptance gate of the prepared serving path:
//! `ServingHandle::lookup` — and the sharded router's
//! `ShardedServingHandle::lookup` in front of it — perform **zero heap
//! allocations** on the warm path, and therefore zero `Debug`/SQL rendering
//! and zero `Value` clones, all of which allocate.
//!
//! Enforced with a counting global allocator. This file is its own test
//! binary so no unrelated suite shares the allocator, and both the counter
//! and its gate are const-initialized thread-locals (which themselves never
//! allocate), so the two tests here and the harness's other threads can all
//! run concurrently without leaking allocations into each other's counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use feataug::pipeline::AugModel;
use feataug::{AugPlan, PlannedQuery, PredicateQuery, ShardRouter, ShardedServingHandle};
use feataug_tabular::{AggFunc, Column, Predicate, Table, Value};

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: defers entirely to `System`; the bookkeeping around it is a pair of
// const-initialized thread-local reads (neither allocates).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Run `f` with this thread's allocations counted; returns how many the
/// closure performed.
fn count_allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCATIONS.with(Cell::get) - before
}

/// The shared fixture: two key columns, a float aggregate column, and a
/// categorical predicate column — multi-column probes, categorical and
/// integer atomizers, and NULL slots all get exercised.
fn fixture() -> (Table, Table) {
    let mut train = Table::new("users");
    train
        .add_column("cname", Column::from_strs(&["a", "b", "c"]))
        .unwrap();
    train
        .add_column("uid", Column::from_i64s(&[1, 2, 9]))
        .unwrap();
    let mut relevant = Table::new("logs");
    relevant
        .add_column("cname", Column::from_strs(&["a", "a", "b", "b"]))
        .unwrap();
    relevant
        .add_column("uid", Column::from_i64s(&[1, 1, 2, 2]))
        .unwrap();
    relevant
        .add_column("pprice", Column::from_f64s(&[10.0, 20.0, 30.0, 40.0]))
        .unwrap();
    relevant
        .add_column("department", Column::from_strs(&["E", "H", "E", "E"]))
        .unwrap();
    (train, relevant)
}

fn planned(agg: AggFunc, predicate: Predicate, keys: &[&str]) -> PlannedQuery {
    PlannedQuery {
        query: PredicateQuery {
            agg,
            agg_column: "pprice".into(),
            predicate,
            group_keys: keys.iter().map(|s| s.to_string()).collect(),
        },
        loss: 0.0,
    }
}

#[test]
fn warm_prepared_lookup_is_allocation_free() {
    // A model mixing key subsets, predicate shapes and aggregate families —
    // every hot-path branch of the handle (multi-column probes, categorical
    // and integer atomizers, NULL slots) gets exercised.
    let (train, relevant) = fixture();
    let plan = AugPlan::new(
        "logs",
        vec!["cname".into(), "uid".into()],
        vec![
            planned(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]),
            planned(AggFunc::Avg, Predicate::True, &["cname", "uid"]),
            planned(AggFunc::Median, Predicate::True, &["uid"]),
            planned(AggFunc::Count, Predicate::ge("pprice", 15.0), &["cname"]),
        ],
    );
    let model = AugModel::compile(plan, &train, &relevant).expect("plan compiles");
    let handle = model.prepare().expect("prepare");

    // Keys built before counting starts: seen, partially seen, unseen, NULL
    // and type-mismatched — misses must be as allocation-free as hits.
    let keys: Vec<Vec<Value>> = vec![
        vec![Value::Str("a".into()), Value::Int(1)],
        vec![Value::Str("b".into()), Value::Int(2)],
        vec![Value::Str("b".into()), Value::Int(777)],
        vec![Value::Str("zz".into()), Value::Int(777)],
        vec![Value::Null, Value::Int(2)],
        vec![Value::Int(3), Value::Str("a".into())],
    ];
    let mut out: Vec<Option<f64>> = Vec::new();

    // Warm-up: pays the output buffer's one allocation and proves the
    // answers themselves.
    handle.lookup(&keys[0], &mut out).unwrap();
    assert_eq!(out, vec![Some(10.0), Some(15.0), Some(15.0), Some(1.0)]);
    for key in &keys {
        handle.lookup(key, &mut out).unwrap();
    }

    // The gate: thousands of warm lookups, zero allocations.
    let allocations = count_allocations(|| {
        for _ in 0..2_000 {
            for key in &keys {
                handle.lookup(key, &mut out).unwrap();
            }
        }
    });
    assert_eq!(
        allocations, 0,
        "ServingHandle::lookup allocated on the warm path"
    );

    // Sanity-check the harness itself: the counter does see allocations.
    let observed = count_allocations(|| {
        let v: Vec<u64> = (0..64).collect();
        std::hint::black_box(v);
    });
    assert!(
        observed > 0,
        "the counting allocator must observe a straightforward Vec allocation"
    );

    // And the answers after the counted run are still right.
    handle.lookup(&keys[1], &mut out).unwrap();
    assert_eq!(out, vec![Some(70.0), Some(35.0), Some(35.0), Some(2.0)]);
    handle.lookup(&keys[3], &mut out).unwrap();
    assert_eq!(out, vec![None, None, None, None]);
}

#[test]
fn warm_sharded_lookup_is_allocation_free() {
    // The sharded front door adds a routing hash plus a shard-handle probe to
    // every request; both are `// lint: hot-path` fns in serving/shard.rs and
    // this test is the runtime half of that promise. Every query groups by
    // `cname` so the router shards on it (three shards — keys "a" and "b"
    // genuinely land on different engines, so the loop below crosses shards).
    let (train, relevant) = fixture();
    let plan = AugPlan::new(
        "logs",
        vec!["cname".into(), "uid".into()],
        vec![
            planned(AggFunc::Sum, Predicate::eq("department", "E"), &["cname"]),
            planned(AggFunc::Avg, Predicate::True, &["cname", "uid"]),
            planned(AggFunc::Count, Predicate::ge("pprice", 15.0), &["cname"]),
        ],
    );
    let router =
        ShardRouter::build_for_plan(Arc::new(train), &relevant, &plan, 3).expect("router builds");
    let handle = ShardedServingHandle::prepare(&router, &plan).expect("prepare");

    // Seen keys on different shards, unseen, NULL-component and
    // type-mismatched keys — routing a miss must not allocate either.
    let keys: Vec<Vec<Value>> = vec![
        vec![Value::Str("a".into()), Value::Int(1)],
        vec![Value::Str("b".into()), Value::Int(2)],
        vec![Value::Str("b".into()), Value::Int(777)],
        vec![Value::Str("zz".into()), Value::Int(777)],
        vec![Value::Null, Value::Int(2)],
        vec![Value::Int(3), Value::Str("a".into())],
    ];
    let mut out: Vec<Option<f64>> = Vec::new();

    // Warm-up proves the routed answers match the unsharded fixture's.
    handle.lookup(&keys[0], &mut out).unwrap();
    assert_eq!(out, vec![Some(10.0), Some(15.0), Some(1.0)]);
    handle.lookup(&keys[1], &mut out).unwrap();
    assert_eq!(out, vec![Some(70.0), Some(35.0), Some(2.0)]);
    for key in &keys {
        handle.lookup(key, &mut out).unwrap();
    }

    // The gate: thousands of warm routed lookups, zero allocations — the
    // routing hash is a stack `DefaultHasher` and the probe reuses `out`.
    let allocations = count_allocations(|| {
        for _ in 0..2_000 {
            for key in &keys {
                handle.lookup(key, &mut out).unwrap();
            }
        }
    });
    assert_eq!(
        allocations, 0,
        "ShardedServingHandle::lookup allocated on the warm path"
    );

    // Answers after the counted run are still right, misses included.
    handle.lookup(&keys[0], &mut out).unwrap();
    assert_eq!(out, vec![Some(10.0), Some(15.0), Some(1.0)]);
    handle.lookup(&keys[3], &mut out).unwrap();
    assert_eq!(out, vec![None, None, None]);
}
