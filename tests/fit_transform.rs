//! The fit/transform API split, property-tested across generated datasets:
//!
//! * `fit` + `transform(train)` is bit-identical to the seed one-shot
//!   `augment` materialisation (the search-time feature vectors attached
//!   directly), and [`feataug::FeatAug::augment`] is exactly that wrapper;
//! * `AugPlan` round-trips losslessly through its text format over
//!   randomized query pools;
//! * transform onto a held-out-keys table yields NULL for unseen groups and
//!   reuses the cached per-group features (no new evaluations — asserted via
//!   `EngineStats`);
//! * `serve` point lookups agree with transform rows.

use proptest::prelude::*;
use rand::SeedableRng;

use feataug::pipeline::AugModel;
use feataug::{
    AugPlan, FeatAug, FeatAugConfig, PlannedQuery, QueryCodec, QueryEngine, QueryTemplate,
};
use feataug_datagen::GenConfig;
use feataug_ml::ModelKind;
use feataug_repro::to_aug_task;
use feataug_tabular::{AggFunc, Column, Table, Value};

fn tiny_cfg(seed: u64) -> FeatAugConfig {
    let mut cfg = FeatAugConfig::fast(ModelKind::Linear).with_seed(seed);
    cfg.n_templates = 2;
    cfg.queries_per_template = 2;
    cfg.template_id.n_templates = 2;
    cfg.template_id.pool_samples = 6;
    cfg.sqlgen.warmup_iters = 10;
    cfg.sqlgen.warmup_top_k = 3;
    cfg.sqlgen.search_iters = 4;
    cfg
}

/// The seed materialisation the pre-split terminal `augment` performed: the
/// search-time feature vectors attached directly, non-finite → NULL.
fn seed_materialise(train: &Table, queries: &[feataug::generation::GeneratedQuery]) -> Table {
    let mut augmented = train.clone();
    for q in queries {
        let values: Vec<Option<f64>> = q
            .feature
            .iter()
            .map(|v| if v.is_finite() { Some(*v) } else { None })
            .collect();
        let _ = augmented.add_column(q.feature_name.clone(), Column::from_opt_f64s(&values));
    }
    augmented
}

fn assert_tables_bit_identical(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row counts");
    assert_eq!(a.column_names(), b.column_names(), "{context}: columns");
    for name in a.column_names() {
        for row in 0..a.num_rows() {
            let va = a.value(row, name).unwrap();
            let vb = b.value(row, name).unwrap();
            let same = match (&va, &vb) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                _ => va == vb,
            };
            assert!(same, "{context}: column {name} row {row}: {va:?} vs {vb:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `fit` + `transform(train)` reproduces the seed augment path bit for
    /// bit — and `augment` IS that wrapper. The engine's batch layer runs at
    /// whatever worker count the environment picks (CI pins the suite at 1
    /// thread and at the default), so the identity holds at both.
    #[test]
    fn fit_transform_is_bit_identical_to_seed_augment(
        seed in 0u64..500,
        dataset_idx in 0usize..4,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let cfg = tiny_cfg(seed);

        let model = FeatAug::new(cfg.clone()).fit(&task).unwrap();
        let seed_table = seed_materialise(&task.train, model.queries());
        let transformed = model.transform(&task.train).unwrap();
        assert_tables_bit_identical(&transformed, &seed_table, name);

        let one_shot = FeatAug::new(cfg).augment(&task);
        assert_tables_bit_identical(&one_shot.augmented_train, &seed_table, name);
        prop_assert_eq!(&one_shot.plan, model.plan());
    }

    /// `AugPlan::from_plan_text(plan.to_plan_text()) == plan` over randomized
    /// query pools from every generated dataset's codec (random aggregates,
    /// predicates with string/float/datetime constants, random key subsets).
    #[test]
    fn plan_text_round_trips_over_randomized_pools(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 1usize..12,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            task.resolved_agg_columns(),
            task.resolved_predicate_attrs(),
            task.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &task.relevant).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37);
        let queries: Vec<PlannedQuery> = (0..n_queries)
            .map(|i| PlannedQuery {
                query: codec.decode(&codec.space().sample(&mut rng)),
                loss: (i as f64 - 2.5) * 0.173,
            })
            .collect();
        let plan = AugPlan::new(task.relevant.name(), task.key_columns.clone(), queries);
        let text = plan.to_plan_text();
        let parsed = AugPlan::from_plan_text(&text).unwrap();
        prop_assert_eq!(&parsed, &plan, "round trip of:\n{}", text);
        prop_assert_eq!(parsed.to_plan_text(), text);
    }

    /// Transforming a second table reuses the memoized per-group features —
    /// `EngineStats` must record zero new evaluations — and held-out keys
    /// absent from the relevant table come back NULL.
    #[test]
    fn transform_reuses_aggregations_and_nulls_unseen_groups(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 1usize..8,
    ) {
        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            task.resolved_agg_columns(),
            task.resolved_predicate_attrs(),
            task.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &task.relevant).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x517e);
        let queries: Vec<PlannedQuery> = (0..n_queries)
            .map(|_| PlannedQuery { query: codec.decode(&codec.space().sample(&mut rng)), loss: 0.0 })
            .collect();
        let plan = AugPlan::new(task.relevant.name(), task.key_columns.clone(), queries);
        let feature_names = plan.feature_names();
        let model = AugModel::compile(plan, &task.train, &task.relevant).expect("plan compiles");

        let on_train = model.transform(&task.train).unwrap();
        let stats_after_first = model.engine_stats();
        prop_assert!(stats_after_first.group_features >= 1);

        // A held-out table: the train keys with every value replaced by one
        // the relevant table has never seen (string keys) — plus the first
        // real train row for contrast.
        let mut held_out_cols: Vec<(String, Column)> = Vec::new();
        for key in &task.key_columns {
            let col = task.train.column(key).unwrap();
            let mut unseen = Column::empty(col.dtype());
            unseen.push(col.get(0)).unwrap();
            unseen
                .push(match col.dtype() {
                    feataug_tabular::DataType::Categorical => Value::Str("##never-seen##".into()),
                    feataug_tabular::DataType::Int => Value::Int(i64::MIN + 7),
                    feataug_tabular::DataType::DateTime => Value::DateTime(i64::MIN + 7),
                    feataug_tabular::DataType::Float => Value::Float(-1.0e301),
                    feataug_tabular::DataType::Bool => Value::Null,
                })
                .unwrap();
            held_out_cols.push((key.clone(), unseen));
        }
        let mut held_out = Table::new("held_out");
        for (name, col) in held_out_cols {
            held_out.add_column(name, col).unwrap();
        }
        let on_held_out = model.transform(&held_out).unwrap();
        prop_assert_eq!(
            model.engine_stats(), stats_after_first,
            "second transform must run no new evaluations"
        );

        for fname in &feature_names {
            if on_held_out.column(fname).is_err() || on_train.column(fname).is_err() {
                continue; // name collided with an existing column and was skipped
            }
            // Row 0 carries a real train key: it must match the train
            // transform's row 0 bit for bit.
            prop_assert_eq!(
                on_held_out.value(0, fname).unwrap(),
                on_train.value(0, fname).unwrap(),
                "feature {} row 0", fname
            );
            // Row 1's key never appears in the relevant table: NULL.
            prop_assert_eq!(
                on_held_out.value(1, fname).unwrap(),
                Value::Null,
                "unseen key must be NULL in {}", fname
            );
        }

        // Serve agrees with the transform rows for the real key.
        let key: Vec<Value> = task
            .key_columns
            .iter()
            .map(|k| task.train.value(0, k).unwrap())
            .collect();
        let served = model.serve(&key).unwrap();
        for (fname, value) in feature_names.iter().zip(&served) {
            if on_train.column(fname).is_err() {
                continue;
            }
            let expected = match on_train.value(0, fname).unwrap() {
                Value::Float(f) => Some(f),
                Value::Null => None,
                other => panic!("feature column held {other:?}"),
            };
            prop_assert_eq!(
                value.map(f64::to_bits),
                expected.map(f64::to_bits),
                "serve disagrees with transform for {}", fname
            );
        }
    }

    /// The engine-level transform path agrees bit for bit with the naive
    /// execute-then-left-join reference on the training table, for arbitrary
    /// sampled queries — the transform analogue of the evaluate equivalence.
    #[test]
    fn engine_transform_matches_naive_reference(
        seed in 0u64..10_000,
        dataset_idx in 0usize..4,
        n_queries in 2usize..8,
    ) {
        use feataug::encoding::feature_vector;

        let name = feataug_datagen::one_to_many_names()[dataset_idx];
        let ds = feataug_datagen::generate_by_name(name, &GenConfig::tiny().with_seed(seed)).unwrap();
        let task = to_aug_task(&ds);
        let template = QueryTemplate::new(
            AggFunc::all().to_vec(),
            task.resolved_agg_columns(),
            task.resolved_predicate_attrs(),
            task.key_columns.clone(),
        );
        let codec = QueryCodec::build(&template, &task.relevant).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x7a5f);
        let pool: Vec<_> = (0..n_queries)
            .map(|_| codec.decode(&codec.space().sample(&mut rng)))
            .collect();

        let engine = QueryEngine::new(&task.train, &task.relevant);
        let transformed = engine.transform(&pool, &task.train).unwrap();
        for (q, values) in pool.iter().zip(&transformed) {
            let (augmented, fname) = q.augment(&task.train, &task.relevant).unwrap();
            let reference = feature_vector(&augmented, &fname);
            prop_assert_eq!(values.len(), reference.len());
            for (row, (t, r)) in values.iter().zip(&reference).enumerate() {
                // The reference is NaN-encoded; the transform is Option-coded.
                let t_bits = t.unwrap_or(f64::NAN).to_bits();
                prop_assert_eq!(
                    t_bits, r.to_bits(),
                    "row {} of `{}` on {}", row, q.to_sql("R"), name
                );
            }
        }
    }
}
