//! One `QueryEngine` per `(train, relevant)` pair, shared across every component that
//! evaluates candidate queries against it: Query Template Identification, SQL Query
//! Generation, and the DFS/Random baselines. The engine's `stats()` counters make the
//! cross-component cache reuse observable — these tests pin that behaviour down.

use feataug::baselines::{featuretools_augment_with_engine, random_augment_with_engine};
use feataug::evaluation::FeatureEvaluator;
use feataug::generation::{QueryGenerator, SqlGenConfig};
use feataug::template_id::{TemplateIdConfig, TemplateIdentifier};
use feataug::{FeatAug, FeatAugConfig, QueryEngine};
use feataug_datagen::GenConfig;
use feataug_featuretools::DfsConfig;
use feataug_ml::ModelKind;
use feataug_repro::to_aug_task;
use feataug_tabular::AggFunc;

fn tmall_task() -> feataug::AugTask {
    let ds = feataug_datagen::tmall::generate(&GenConfig {
        n_entities: 200,
        fanout: 8,
        n_noise_cols: 1,
        seed: 5,
    });
    to_aug_task(&ds)
}

/// The acceptance shape of the shared-engine refactor: QTI compiles the group indexes and
/// column views while scoring beam nodes; generation and the baselines then evaluate through
/// the same engine and reuse them instead of recompiling.
#[test]
fn one_engine_serves_qti_generation_and_baselines() {
    let task = tmall_task();
    let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
    let engine = QueryEngine::new(&task.train, &task.relevant);

    // ---- Component 1: Query Template Identification -------------------------------------
    let identifier = TemplateIdentifier::with_engine(
        &task,
        &evaluator,
        vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count],
        TemplateIdConfig::fast(),
        engine.clone(),
    );
    let (templates, _, _) = identifier.identify();
    assert!(!templates.is_empty());
    let after_qti = engine.stats();
    assert!(
        after_qti.evaluations > 0,
        "QTI must evaluate through the shared engine"
    );
    assert!(after_qti.group_indexes >= 1 && after_qti.column_views >= 1);

    // ---- Component 2: SQL Query Generation -----------------------------------------------
    let generator =
        QueryGenerator::with_engine(&task, &evaluator, SqlGenConfig::fast(), engine.clone());
    let (queries, _) = generator.generate(&templates[0].template, 2);
    assert!(!queries.is_empty());
    let after_gen = engine.stats();
    assert!(
        after_gen.evaluations > after_qti.evaluations,
        "generation must evaluate through the same engine ({after_gen:?})"
    );
    // The tmall foreign key has 2 attributes -> at most 3 group-key subsets exist; had
    // generation compiled its own engine the per-run subset count would restart from zero.
    assert!(
        after_gen.group_indexes <= 3,
        "components must reuse compiled group indexes, not rebuild them ({after_gen:?})"
    );

    // ---- Baselines through the same engine ------------------------------------------------
    let dfs = DfsConfig {
        agg_funcs: vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count],
        ..DfsConfig::default()
    };
    let ft = featuretools_augment_with_engine(&task, 4, None, &dfs, &engine);
    assert!(ft.num_columns() > task.train.num_columns());
    let rnd = random_augment_with_engine(&task, &[AggFunc::Sum, AggFunc::Avg], 2, 2, 7, &engine);
    assert!(rnd.num_columns() > task.train.num_columns());
    let after_baselines = engine.stats();
    assert!(after_baselines.evaluations > after_gen.evaluations);
    assert!(
        after_baselines.group_indexes <= 3,
        "baselines must reuse the compiled group indexes ({after_baselines:?})"
    );
    // TPE resampling plus the baselines' full-key trivial queries overlapping QTI's pool make
    // evaluation-level cache hits all but certain across this many evaluations.
    assert!(
        after_baselines.feature_cache_hits > 0,
        "expected cross-component feature-LRU reuse ({after_baselines:?})"
    );
}

/// The pipeline wires the sharing up internally and reports the shared engine's counters.
#[test]
fn pipeline_reports_shared_engine_stats() {
    let task = tmall_task();
    let mut cfg = FeatAugConfig::fast(ModelKind::Linear);
    cfg.n_templates = 2;
    cfg.queries_per_template = 2;
    cfg.template_id.n_templates = 2;
    cfg.template_id.pool_samples = 8;
    cfg.sqlgen.warmup_iters = 12;
    cfg.sqlgen.warmup_top_k = 4;
    cfg.sqlgen.search_iters = 5;
    let result = FeatAug::new(cfg).augment(&task);
    let stats = result.engine_stats;
    assert!(stats.evaluations > 0);
    assert!(stats.group_indexes >= 1);
    // QTI alone runs pool_samples per beam node; generation adds warmup + search iterations
    // per template. Seeing more evaluations than QTI alone could produce proves one engine
    // counted both components.
    assert!(
        stats.evaluations > 8,
        "expected combined QTI + generation throughput on one engine, got {stats:?}"
    );
}

/// Batch evaluation must produce features deterministically regardless of the worker count the
/// environment picks — the end-to-end pipeline result is a function of config + seed only.
#[test]
fn pipeline_result_is_deterministic_across_runs() {
    let task = tmall_task();
    let mut cfg = FeatAugConfig::fast(ModelKind::Linear);
    cfg.template_id.pool_samples = 6;
    cfg.sqlgen.warmup_iters = 8;
    cfg.sqlgen.warmup_top_k = 3;
    cfg.sqlgen.search_iters = 4;
    let a = FeatAug::new(cfg.clone()).augment(&task);
    let b = FeatAug::new(cfg).augment(&task);
    assert_eq!(a.feature_names, b.feature_names);
    assert_eq!(
        a.augmented_train.num_columns(),
        b.augmented_train.num_columns()
    );
}
