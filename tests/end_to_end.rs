//! Cross-crate integration tests: the full FeatAug pipeline against the baselines on generated
//! datasets with planted predicate-aware signal.

use feataug::baselines::{featuretools_augment, random_augment};
use feataug::evaluation::evaluate_table;
use feataug::{FeatAug, FeatAugConfig};
use feataug_datagen::GenConfig;
use feataug_featuretools::DfsConfig;
use feataug_ml::{ModelKind, Task};
use feataug_repro::to_aug_task;
use feataug_tabular::AggFunc;

fn fast_cfg(model: ModelKind) -> FeatAugConfig {
    let mut cfg = FeatAugConfig::fast(model);
    cfg.n_templates = 3;
    cfg.queries_per_template = 3;
    cfg.template_id.n_templates = 3;
    cfg.template_id.pool_samples = 16;
    cfg.sqlgen.warmup_iters = 28;
    cfg.sqlgen.warmup_top_k = 6;
    cfg.sqlgen.search_iters = 10;
    cfg
}

fn small_dfs() -> DfsConfig {
    DfsConfig {
        agg_funcs: vec![
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Count,
            AggFunc::Max,
            AggFunc::Min,
        ],
        ..DfsConfig::default()
    }
}

#[test]
fn feataug_beats_no_augmentation_on_planted_signal() {
    let ds = feataug_datagen::tmall::generate(&GenConfig {
        n_entities: 500,
        fanout: 8,
        n_noise_cols: 1,
        seed: 21,
    });
    let task = to_aug_task(&ds);
    let model = ModelKind::Linear;

    let base = evaluate_table(&task.train, "label", &task.key_columns, task.task, model, 2);
    let result = FeatAug::new(fast_cfg(model)).augment(&task);
    let aug = evaluate_table(
        &result.augmented_train,
        "label",
        &task.key_columns,
        task.task,
        model,
        2,
    );
    assert!(
        aug.value > base.value + 0.03,
        "FeatAug (AUC {:.3}) should clearly beat the bare table (AUC {:.3})",
        aug.value,
        base.value
    );
}

#[test]
fn feataug_competitive_with_featuretools_on_predicate_signal() {
    // The Tmall generator hides most of the signal behind a department+recency predicate, so
    // predicate-aware augmentation should at least match predicate-free DFS.
    let ds = feataug_datagen::tmall::generate(&GenConfig {
        n_entities: 800,
        fanout: 8,
        n_noise_cols: 1,
        seed: 22,
    });
    let task = to_aug_task(&ds);
    let model = ModelKind::GradientBoosting;

    let ft_table = featuretools_augment(&task, 12, None, &small_dfs());
    let ft = evaluate_table(&ft_table, "label", &task.key_columns, task.task, model, 2);

    let result = FeatAug::new(fast_cfg(model)).augment(&task);
    let fa = evaluate_table(
        &result.augmented_train,
        "label",
        &task.key_columns,
        task.task,
        model,
        2,
    );
    assert!(
        fa.value >= ft.value - 0.02,
        "FeatAug (AUC {:.3}) should be at least competitive with Featuretools (AUC {:.3})",
        fa.value,
        ft.value
    );
}

#[test]
fn regression_dataset_reports_rmse_and_augmentation_helps() {
    let ds = feataug_datagen::merchant::generate(&GenConfig {
        n_entities: 400,
        fanout: 8,
        n_noise_cols: 1,
        seed: 23,
    });
    let task = to_aug_task(&ds);
    assert_eq!(task.task, Task::Regression);
    let model = ModelKind::Linear;

    let base = evaluate_table(&task.train, "label", &task.key_columns, task.task, model, 2);
    let result = FeatAug::new(fast_cfg(model)).augment(&task);
    let aug = evaluate_table(
        &result.augmented_train,
        "label",
        &task.key_columns,
        task.task,
        model,
        2,
    );
    assert_eq!(base.metric, feataug_ml::Metric::Rmse);
    assert!(
        aug.value < base.value,
        "augmentation should reduce RMSE ({:.3} vs base {:.3})",
        aug.value,
        base.value
    );
}

#[test]
fn baselines_and_feataug_produce_comparable_feature_budgets() {
    let ds = feataug_datagen::instacart::generate(&GenConfig::tiny());
    let task = to_aug_task(&ds);

    let ft = featuretools_augment(&task, 6, None, &small_dfs());
    assert_eq!(ft.num_columns(), task.train.num_columns() + 6);

    let rnd = random_augment(&task, &[AggFunc::Sum, AggFunc::Avg], 3, 2, 9);
    assert!(rnd.num_columns() > task.train.num_columns());

    let result = FeatAug::new(fast_cfg(ModelKind::Linear)).augment(&task);
    assert!(!result.feature_names.is_empty());
    assert!(result.feature_names.len() <= 3 * 3);
}

#[test]
fn multiclass_one_to_one_dataset_works_end_to_end() {
    let ds = feataug_datagen::covtype::generate(&GenConfig::tiny());
    let task = to_aug_task(&ds);
    assert_eq!(task.task, Task::MultiClassification { n_classes: 4 });

    let base = evaluate_table(
        &task.train,
        "label",
        &task.key_columns,
        task.task,
        ModelKind::RandomForest,
        2,
    );
    let result = FeatAug::new(fast_cfg(ModelKind::RandomForest)).augment(&task);
    let aug = evaluate_table(
        &result.augmented_train,
        "label",
        &task.key_columns,
        task.task,
        ModelKind::RandomForest,
        2,
    );
    assert_eq!(base.metric, feataug_ml::Metric::F1Macro);
    // The relevant table carries the class-defining attributes, so augmentation should help.
    assert!(
        aug.value > base.value,
        "augmentation should raise F1 on covtype ({:.3} vs {:.3})",
        aug.value,
        base.value
    );
}

#[test]
fn every_model_kind_runs_through_the_pipeline() {
    let ds = feataug_datagen::tmall::generate(&GenConfig::tiny());
    let task = to_aug_task(&ds);
    for model in ModelKind::all() {
        let mut cfg = fast_cfg(*model);
        cfg.n_templates = 2;
        cfg.queries_per_template = 1;
        cfg.template_id.n_templates = 2;
        cfg.template_id.pool_samples = 5;
        cfg.sqlgen.warmup_iters = 8;
        cfg.sqlgen.warmup_top_k = 3;
        cfg.sqlgen.search_iters = 4;
        let result = FeatAug::new(cfg).augment(&task);
        assert!(
            !result.feature_names.is_empty(),
            "{model} pipeline produced no features"
        );
    }
}
