//! Workspace-level re-exports and glue for the FeatAug reproduction.
//!
//! This crate exists so that the repository's `examples/` and `tests/` directories can exercise
//! the public API of every member crate through a single dependency, and provides the small
//! adapter between the synthetic dataset generators and the core library's problem type.
//! Library users should depend on the individual crates (`feataug`, `feataug-tabular`, ...)
//! directly.

pub use feataug;
pub use feataug_datagen as datagen;
pub use feataug_featuretools as featuretools;
pub use feataug_fsel as fsel;
pub use feataug_hpo as hpo;
pub use feataug_ml as ml;
pub use feataug_tabular as tabular;

use feataug::AugTask;
use feataug_datagen::{SyntheticDataset, TaskKind};
use feataug_ml::Task;

/// Convert a generated dataset's task kind into the ML crate's task type.
pub fn to_ml_task(kind: TaskKind) -> Task {
    match kind {
        TaskKind::Binary => Task::BinaryClassification,
        TaskKind::MultiClass(n) => Task::MultiClassification { n_classes: n },
        TaskKind::Regression => Task::Regression,
    }
}

/// Turn a synthetic dataset into a FeatAug augmentation task.
pub fn to_aug_task(ds: &SyntheticDataset) -> AugTask {
    AugTask::new(
        ds.train.clone(),
        ds.relevant.clone(),
        ds.key_columns.clone(),
        ds.label_column.clone(),
        to_ml_task(ds.task),
    )
    .with_agg_columns(ds.agg_columns.clone())
    .with_predicate_attrs(ds.predicate_attrs.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use feataug_datagen::GenConfig;

    #[test]
    fn adapter_preserves_metadata() {
        let ds = feataug_datagen::tmall::generate(&GenConfig::tiny());
        let task = to_aug_task(&ds);
        assert_eq!(task.key_columns, ds.key_columns);
        assert_eq!(task.label_column, ds.label_column);
        assert_eq!(task.task, Task::BinaryClassification);
        assert_eq!(task.resolved_predicate_attrs(), ds.predicate_attrs);
    }

    #[test]
    fn task_kind_mapping() {
        assert_eq!(to_ml_task(TaskKind::Regression), Task::Regression);
        assert_eq!(
            to_ml_task(TaskKind::MultiClass(4)),
            Task::MultiClassification { n_classes: 4 }
        );
    }
}
