//! Query Template Identification walk-through on the Student-style dataset.
//!
//! Run with `cargo run --release --example template_identification`.
//!
//! When the user cannot say which attributes should form the `WHERE` clause, FeatAug's beam
//! search explores attribute combinations itself (paper Section VI). This example shows the
//! identified templates, compares the low-cost proxies (SC / MI / LR of Table VIII), and
//! contrasts the beam search against the brute-force enumeration.

use feataug::evaluation::FeatureEvaluator;
use feataug::proxy::LowCostProxy;
use feataug::template_id::{TemplateIdConfig, TemplateIdentifier};
use feataug_ml::ModelKind;
use feataug_repro::to_aug_task;
use feataug_tabular::AggFunc;

fn main() {
    let dataset = feataug_datagen::student::generate(&feataug_datagen::GenConfig::small());
    let task = to_aug_task(&dataset);
    println!("Student-style dataset ({} sessions)", task.train.num_rows());
    println!(
        "candidate predicate attributes: {:?}",
        task.resolved_predicate_attrs()
    );
    println!("planted signal: {}\n", dataset.signal_description);

    let evaluator = FeatureEvaluator::new(&task, ModelKind::Linear, 3);
    let agg_funcs = vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Max];

    // Beam search with both optimisations (the default).
    for proxy in LowCostProxy::all() {
        let cfg = TemplateIdConfig {
            proxy: *proxy,
            ..TemplateIdConfig::default()
        };
        let identifier = TemplateIdentifier::new(&task, &evaluator, agg_funcs.clone(), cfg);
        let (templates, elapsed, evaluated) = identifier.identify();
        println!("proxy = {proxy}: evaluated {evaluated} nodes in {elapsed:?}");
        for t in templates.iter().take(4) {
            println!("  {:>8.4}  {}", t.effectiveness, t.template.label());
        }
        println!();
    }

    // Brute force over a reduced attribute set, for comparison.
    let reduced =
        task.clone()
            .with_predicate_attrs(vec!["event_name".into(), "level".into(), "room".into()]);
    let identifier = TemplateIdentifier::new(
        &reduced,
        &evaluator,
        agg_funcs,
        TemplateIdConfig {
            max_depth: 3,
            ..TemplateIdConfig::default()
        },
    );
    let (templates, elapsed, evaluated) = identifier.brute_force();
    println!("brute force over 3 attributes: evaluated {evaluated} subsets in {elapsed:?}");
    for t in templates.iter().take(4) {
        println!("  {:>8.4}  {}", t.effectiveness, t.template.label());
    }
}
