//! Offline → online: fit once, transform any table, serve single keys.
//!
//! Run with `cargo run --example serve_features`.
//!
//! The historical `FeatAug::augment` was terminal — it returned only the
//! augmented *training* table. This example walks the fit/transform split
//! that replaces it:
//!
//! 1. **fit** on a training split (QTI + SQL Query Generation, offline);
//! 2. **transform** a held-out test split the search never saw — the fitted
//!    model gathers its cached per-group features through the test rows'
//!    keys, paying no new aggregation;
//! 3. **serve** a single key, as an online feature store would per request;
//! 4. ship the portable **plan** as text and recompile it into a fresh
//!    serving model, as a separate serving process would;
//! 5. go **production-shaped**: the fitted model already co-owns its tables
//!    (`Arc`-backed, `Send + 'static`), so move it onto a serving thread and
//!    answer requests through a prepared [`feataug::ServingHandle`] — the
//!    allocation-free hot path (`lookup` into a reused buffer, `lookup_batch`
//!    across the worker pool);
//! 6. put a **survivable front door** on it: a [`feataug::ServingTier`] with
//!    admission control, per-request deadlines with graceful degradation,
//!    and atomic **hot-swap** of a recompiled model under live traffic;
//! 7. **ingest live**: append fresh relevant rows with
//!    `AugModel::append_relevant` — one copy-on-write engine epoch, only the
//!    touched groups recomputed — and watch the already-installed handle
//!    serve the new epoch with no re-prepare and no hot-swap;
//! 8. **shard** the serving layer: hash-partition the relevant table by the
//!    task's key columns into four engines behind a [`feataug::ShardRouter`]
//!    — routed lookups stay bit-identical to the unsharded path, appends
//!    split by the same hash with per-shard epochs under one router
//!    generation, and per-request deadlines preempt slow work *mid-kernel*
//!    through cancellation checkpoints;
//! 9. go **multi-hop**: register a whole schema of tables in a
//!    [`feataug::SchemaGraph`], let budgeted join-path search
//!    ([`feataug::fit_schema`]) decide which paths earn a full search, and
//!    serve a promoted multi-hop plan by recompiling its shipped text
//!    against a freshly registered graph.

use std::sync::Arc;
use std::time::Duration;

use feataug::pipeline::AugModel;
use feataug::schema::{fit_schema, SchemaGraph, SchemaTask};
use feataug::{
    AugPlan, FeatAug, FeatAugConfig, PlannedQuery, PredicateQuery, ServingTier, ShardRouter,
    ShardedServingHandle, TierConfig,
};
use feataug_ml::{ModelKind, Task};
use feataug_repro::to_aug_task;
use feataug_tabular::{AggFunc, Predicate, Value};

fn main() {
    // ---- 0. A generated Tmall-style task ---------------------------------------------------
    let dataset = feataug_datagen::tmall::generate(&feataug_datagen::GenConfig::small());
    let full_task = to_aug_task(&dataset);

    // Split the training table by rows: fit on the first 80%, hold out 20%.
    let n = full_task.train.num_rows();
    let fit_rows: Vec<usize> = (0..n * 4 / 5).collect();
    let test_rows: Vec<usize> = (n * 4 / 5..n).collect();
    let mut task = full_task.clone();
    task.train = full_task.train.take(&fit_rows).into();
    let test_split = full_task.train.take(&test_rows);

    // ---- 1. Fit: discover predicate-aware queries offline ----------------------------------
    let model = FeatAug::new(FeatAugConfig::fast(ModelKind::Linear))
        .fit(&task)
        .expect("the generated task is well-formed");
    println!("fitted {} queries:", model.plan().len());
    for (sql, planned) in model.plan().to_sql().iter().zip(&model.plan().queries) {
        println!("  loss {:>8.4}  {sql}", planned.loss);
    }

    // ---- 2. Transform: the training table AND the held-out split ---------------------------
    let augmented_train = model.transform(&task.train).expect("transform train");
    let augmented_test = model.transform(&test_split).expect("transform test split");
    println!(
        "\ntransformed train ({} rows) and held-out test ({} rows) to {} columns each",
        augmented_train.num_rows(),
        augmented_test.num_rows(),
        augmented_test.num_columns(),
    );
    let stats = model.engine_stats();
    println!(
        "engine: {} per-group features cached, {} evaluations total (both transforms reused them)",
        stats.group_features, stats.evaluations
    );

    // ---- 3. Serve: single-key point lookups ------------------------------------------------
    let key: Vec<Value> = task
        .key_columns
        .iter()
        .map(|k| test_split.value(0, k).expect("key value"))
        .collect();
    let features = model.serve(&key).expect("serve");
    println!("\nserve({key:?}):");
    for (name, value) in model.feature_names().iter().zip(&features) {
        match value {
            Some(v) => println!("  {name} = {v}"),
            None => println!("  {name} = NULL"),
        }
    }

    // ---- 4. Ship the plan as text; recompile elsewhere -------------------------------------
    let text = model.plan().to_plan_text();
    println!("\nportable plan artifact ({} bytes):\n{text}", text.len());
    let plan = AugPlan::from_plan_text(&text).expect("round trip");
    assert_eq!(&plan, model.plan());
    let serving = AugModel::compile(plan, &task.train, &task.relevant).expect("plan compiles");
    let reserved = serving.serve(&key).expect("serve from recompiled model");
    assert_eq!(
        reserved
            .iter()
            .map(|v| v.map(f64::to_bits))
            .collect::<Vec<_>>(),
        features
            .iter()
            .map(|v| v.map(f64::to_bits))
            .collect::<Vec<_>>(),
        "a recompiled plan must serve identical features"
    );
    println!("recompiled model serves identical features ✓");

    // ---- 5. Production serving: owned model + prepared lookup handle -----------------------
    // The fitted model already co-owns its tables through the task's `Arc`s
    // (`Send + Sync + 'static`), so it moves onto a serving thread as-is
    // (a separate process would use `AugModel::compile_shared` directly).
    let tier_handle = Arc::new(model.prepare().expect("prepare tier handle"));
    let owned = model;
    let keys: Vec<Vec<Value>> = (0..test_split.num_rows().min(64))
        .map(|row| {
            task.key_columns
                .iter()
                .map(|k| test_split.value(row, k).expect("key value"))
                .collect()
        })
        .collect();
    let expected = features.clone();
    let server = std::thread::spawn(move || {
        let handle = owned.prepare().expect("prepare serving handle");
        // The hot path: reuse one output buffer; warm lookups allocate
        // nothing, render nothing, clone nothing.
        let mut out = Vec::with_capacity(handle.num_features());
        handle.lookup(&keys[0], &mut out).expect("prepared lookup");
        assert_eq!(
            out.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>(),
            expected
                .iter()
                .map(|v| v.map(f64::to_bits))
                .collect::<Vec<_>>(),
            "the prepared handle must serve exactly what `serve` served"
        );
        // And the batch form fans across the worker pool.
        let batch = handle.lookup_batch(&keys).expect("batch lookup");
        (handle.num_features(), batch.len())
    });
    let (n_features, n_served) = server.join().expect("serving thread");
    println!(
        "owned model served {n_features} features x {n_served} keys from a spawned thread \
         via the prepared handle ✓"
    );

    // ---- 6. Survivable front door: admission control, deadlines, hot-swap ------------------
    // The tier queues requests behind a bounded admission gate, applies a
    // per-request deadline (degrading to the documented all-NULL row instead
    // of erroring when one fires), and serves from an epoch cell a
    // background refit can atomically swap.
    let bits = |row: &[Option<f64>]| row.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>();
    let tier = ServingTier::new(
        Arc::clone(&tier_handle),
        TierConfig {
            default_deadline: Some(Duration::from_millis(50)),
            ..TierConfig::default()
        },
    );
    let row = tier.lookup(&key).expect("tier lookup");
    assert_eq!(
        bits(&row),
        bits(&features),
        "the tier must answer exactly what the handle answers"
    );
    println!(
        "\ntier answered through admission control (generation {}) ✓",
        tier.generation()
    );

    // A "background refit" ships its plan; recompile against the shared
    // tables and hot-swap it in — lookups in flight finish on the model
    // their batch pinned, the next batch serves the new one.
    let shipped = AugPlan::from_plan_text(&text).expect("round trip");
    let next = AugModel::compile_shared(shipped, task.train.clone(), task.relevant.clone())
        .expect("plan compiles");
    let generation = tier.install(Arc::new(next.prepare().expect("prepare swapped handle")));
    let after = tier.lookup(&key).expect("tier lookup after swap");
    assert_eq!(
        bits(&after),
        bits(&row),
        "same plan over the same tables must serve identical features"
    );
    let stats = tier.stats();
    println!(
        "hot-swapped to generation {generation} under a live tier \
         (submitted {} answered {} shed {} degraded {}) ✓",
        stats.submitted, stats.answered, stats.shed, stats.degraded
    );

    // ---- 7. Live ingestion: append relevant rows under the live tier -----------------------
    // Fresh relevant rows arrive while the tier keeps serving.
    // `append_relevant` publishes them as one copy-on-write engine epoch:
    // only the touched groups are recomputed, untouched compiled artifacts
    // are `Arc`-shared with the prior epoch, and no lookup ever blocks
    // behind the ingest. The handle installed in step 6 follows its engine's
    // epochs by itself — no re-prepare, no hot-swap.
    let replay_rows: Vec<usize> = (0..task.relevant.num_rows().min(32)).collect();
    let fresh_rows = task.relevant.take(&replay_rows);
    let epoch = next
        .append_relevant(&fresh_rows)
        .expect("append relevant rows");
    println!(
        "\nappended {} relevant rows as epoch {} ({} groups touched, {} new, {} total rows)",
        epoch.appended_rows, epoch.epoch, epoch.touched_groups, epoch.new_groups, epoch.total_rows
    );
    let live = tier.lookup(&key).expect("tier lookup after append");
    assert_eq!(live.len(), row.len());
    println!(
        "tier serves the appended epoch live (engine epoch {}) with no re-prepare ✓",
        next.epoch()
    );

    // ---- 8. Key-sharded serving: partitioned engines, cancellation-aware deadlines ---------
    // Hash-partition the relevant table by the task's key columns into four
    // shard engines behind one router. Full-key queries co-locate every
    // group on exactly one shard, so routed answers are bit-identical to the
    // unsharded path; the tier accepts the sharded handle unchanged, and a
    // per-request deadline preempts a slow lookup mid-kernel through the
    // engine's cancellation checkpoints (degrading to the all-NULL row).
    let shard_planned: Vec<PlannedQuery> = AggFunc::basic()
        .iter()
        .map(|&agg| PlannedQuery {
            query: PredicateQuery {
                agg,
                agg_column: dataset.agg_columns[0].clone(),
                predicate: Predicate::True,
                group_keys: task.key_columns.clone(),
            },
            loss: 0.0,
        })
        .collect();
    let shard_plan = AugPlan::new(
        task.relevant.name(),
        task.key_columns.clone(),
        shard_planned,
    );
    let router = ShardRouter::build_for_plan(task.train.clone(), &task.relevant, &shard_plan, 4)
        .expect("shard router builds");
    let sharded = ShardedServingHandle::prepare(&router, &shard_plan).expect("prepare sharded");
    let shard_tier = ServingTier::new(sharded, TierConfig::default());
    let sharded_row = shard_tier
        .lookup_deadline(&key, Duration::from_millis(50))
        .expect("sharded tier lookup");
    println!(
        "\nsharded tier (4 shards) answered {} features under a 50ms deadline ✓",
        sharded_row.len()
    );
    // Live append through the router: the batch splits by the same key hash,
    // each shard publishes its own epoch, and the installed handle follows
    // with no re-prepare.
    router.append_relevant(&fresh_rows).expect("sharded append");
    let after_append = shard_tier
        .lookup(&key)
        .expect("sharded lookup after append");
    assert_eq!(after_append.len(), sharded_row.len());
    println!(
        "router generation {} after a hash-split append, served live ✓",
        router.generation()
    );

    // ---- 9. Multi-hop schemas: budgeted join-path search -----------------------------------
    // The generated Instacart schema plants its signal two joins away from
    // the training table (`users → orders → order_items → products`): no
    // single relevant table sees both `order_hour` and `department`.
    // Register the catalog once, then let path search enumerate every
    // acyclic join path to the hop cap, proxy-score each, and promote only
    // the budgeted best to a full search.
    let schema = feataug_datagen::instacart::generate_schema(&feataug_datagen::GenConfig::tiny());
    let mut graph = SchemaGraph::new();
    graph
        .register(schema.train.clone())
        .expect("register train");
    for table in &schema.tables {
        graph.register(table.clone()).expect("register table");
    }
    for edge in &schema.edges {
        let left: Vec<&str> = edge.left_keys.iter().map(|s| s.as_str()).collect();
        let right: Vec<&str> = edge.right_keys.iter().map(|s| s.as_str()).collect();
        graph
            .declare_edge(&edge.left, &edge.right, &left, &right)
            .expect("declare edge");
    }
    let schema_task = SchemaTask::new(
        graph,
        schema.train.name(),
        schema.label_column.as_str(),
        Task::BinaryClassification,
    )
    .with_max_hops(2)
    .with_path_budget(1)
    .with_agg_columns(vec!["price".into(), "cart_position".into()])
    .with_predicate_attrs(vec!["department".into(), "order_hour".into()]);
    let fitted = fit_schema(&FeatAugConfig::fast(ModelKind::Linear), &schema_task)
        .expect("the generated schema task is well-formed");
    let stats = fitted.stats();
    println!(
        "\npath search: {} candidate paths, {} promoted under the budget",
        stats.candidates, stats.promoted
    );
    for (path, score) in stats.scores.iter().map(|s| (&s.path, s.score)) {
        println!("  proxy {score:>8.4}  {}", path.view_name());
    }

    // A promoted plan carries its hop route in the plan text (`AUGPLAN 2`);
    // a serving process recompiles it against its own registered graph and
    // answers point lookups exactly like the single-table path above.
    let plan = fitted.plans().into_iter().next().expect("a promoted plan");
    let shipped = AugPlan::from_plan_text(&plan.to_plan_text()).expect("round trip");
    let served = schema_task
        .graph
        .compile(schema.train.name(), shipped)
        .expect("recompile against the registered schema");
    let handle = served.prepare().expect("prepare schema serving handle");
    let schema_key: Vec<Value> = schema
        .key_columns
        .iter()
        .map(|k| schema.train.value(0, k).expect("key value"))
        .collect();
    let mut out = Vec::with_capacity(handle.num_features());
    handle
        .lookup(&schema_key, &mut out)
        .expect("multi-hop lookup");
    println!(
        "recompiled multi-hop plan ({} hops) serves {} features for {schema_key:?} ✓",
        fitted.paths()[0].hops.len(),
        out.len()
    );
}
