//! Quickstart: augment a tiny hand-built training table with a predicate-aware feature.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example mirrors the paper's running example (Figure 1): a `User_Info` training table, a
//! `User_Logs` relevant table in a one-to-many relationship, and the predicate-aware query
//! `SELECT cname, AVG(pprice) FROM User_Logs WHERE department='Electronics' AND timestamp >= t0
//! GROUP BY cname` as the augmented feature.

use feataug::query::PredicateQuery;
use feataug::{FeatAug, FeatAugConfig};
use feataug_ml::{ModelKind, Task};
use feataug_repro::to_aug_task;
use feataug_tabular::{AggFunc, Column, Predicate, Table};

fn main() {
    // ---- 1. A miniature User_Info / User_Logs pair (paper Figure 1) -----------------------
    let mut user_info = Table::new("user_info");
    user_info
        .add_column(
            "cname",
            Column::from_strs(&["alice", "bob", "carol", "dave"]),
        )
        .unwrap();
    user_info
        .add_column("age", Column::from_i64s(&[34, 51, 27, 45]))
        .unwrap();
    user_info
        .add_column("label", Column::from_i64s(&[1, 0, 1, 0]))
        .unwrap();

    let mut user_logs = Table::new("user_logs");
    user_logs
        .add_column(
            "cname",
            Column::from_strs(&["alice", "alice", "bob", "carol", "carol", "dave"]),
        )
        .unwrap();
    user_logs
        .add_column(
            "pprice",
            Column::from_f64s(&[899.0, 25.0, 12.0, 499.0, 18.0, 9.0]),
        )
        .unwrap();
    user_logs
        .add_column(
            "department",
            Column::from_strs(&[
                "Electronics",
                "Food",
                "Food",
                "Electronics",
                "Clothing",
                "Food",
            ]),
        )
        .unwrap();
    user_logs
        .add_column(
            "timestamp",
            Column::from_datetimes(&[200, 50, 120, 210, 90, 60]),
        )
        .unwrap();

    // ---- 2. Execute one hand-written predicate-aware query --------------------------------
    let query = PredicateQuery {
        agg: AggFunc::Avg,
        agg_column: "pprice".into(),
        predicate: Predicate::and(vec![
            Predicate::eq("department", "Electronics"),
            Predicate::ge("timestamp", 150i64),
        ]),
        group_keys: vec!["cname".into()],
    };
    println!("query:\n  {}\n", query.to_sql("user_logs"));
    let (augmented, feature) = query.augment(&user_info, &user_logs).unwrap();
    println!("augmented training table (feature column = {feature}):");
    println!("{}", augmented.preview(10));

    // ---- 3. Let FeatAug search for features automatically on a generated dataset ----------
    let dataset = feataug_datagen::tmall::generate(&feataug_datagen::GenConfig::small());
    let task = to_aug_task(&dataset);
    assert_eq!(task.task, Task::BinaryClassification);

    // Fit once (offline discovery), then transform any table carrying the
    // keys — see examples/serve_features.rs for the full offline→online path.
    let feataug = FeatAug::new(FeatAugConfig::fast(ModelKind::Linear));
    let model = feataug.fit(&task).expect("generated task is well-formed");
    let augmented_train = model.transform(&task.train).expect("transform train");
    println!(
        "FeatAug generated {} features ({} columns total):",
        model.plan().len(),
        augmented_train.num_columns()
    );
    for q in model.queries().iter().take(5) {
        println!(
            "  loss {:>8.4}  {}",
            q.loss,
            q.query.to_sql(dataset.relevant.name())
        );
    }
    let timing = model.timing();
    println!(
        "\ntiming: QTI {:?}, warm-up {:?}, generation {:?}",
        timing.qti, timing.warmup, timing.generate
    );
}
