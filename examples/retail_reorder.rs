//! Retail reorder prediction (Instacart-style scenario) with an explicit, user-provided query
//! template.
//!
//! Run with `cargo run --release --example retail_reorder`.
//!
//! Here the data scientist already suspects which attributes matter (`department` and
//! `order_hour`), so the Query Template Identification component is skipped and the SQL Query
//! Generation component searches a single template's pool — the workflow of paper Section V.

use feataug::evaluation::FeatureEvaluator;
use feataug::generation::{QueryGenerator, SqlGenConfig};
use feataug::QueryTemplate;
use feataug_ml::ModelKind;
use feataug_repro::to_aug_task;
use feataug_tabular::AggFunc;

fn main() {
    let dataset = feataug_datagen::instacart::generate(&feataug_datagen::GenConfig::small());
    let task = to_aug_task(&dataset);
    println!(
        "Instacart-style reorder prediction ({} users)",
        task.train.num_rows()
    );
    println!("planted signal: {}\n", dataset.signal_description);

    // The user supplies the template explicitly: aggregate order statistics, restricted by
    // department and order hour.
    let template = QueryTemplate::new(
        vec![AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Max],
        task.resolved_agg_columns(),
        vec!["department".into(), "order_hour".into()],
        task.key_columns.clone(),
    );
    println!("query template: {template}\n");

    let model = ModelKind::Linear;
    let evaluator = FeatureEvaluator::new(&task, model, 7);
    println!(
        "base validation loss (no feature): {:.4}\n",
        evaluator.base_loss()
    );

    let generator = QueryGenerator::new(&task, &evaluator, SqlGenConfig::default());
    let (queries, timing) = generator.generate(&template, 5);

    println!("best predicate-aware queries found:");
    for q in &queries {
        println!(
            "  loss {:>8.4}  {}",
            q.loss,
            q.query.to_sql("order_history")
        );
    }
    println!(
        "\nwarm-up took {:?}, query generation took {:?}",
        timing.warmup, timing.generate
    );
}
