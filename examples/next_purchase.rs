//! Next-purchase prediction (Tmall-style scenario): FeatAug vs. Featuretools vs. no augmentation.
//!
//! Run with `cargo run --release --example next_purchase`.
//!
//! This reproduces the paper's motivating workload (Examples 1–4): predict whether a customer
//! will make a purchase, given a one-to-many behaviour log whose useful signal hides behind a
//! department + recency predicate. The example reports the test metric of the bare training
//! table, of Featuretools augmentation, and of FeatAug's predicate-aware augmentation.

use feataug::baselines::featuretools_augment;
use feataug::evaluation::evaluate_table;
use feataug::{FeatAug, FeatAugConfig};
use feataug_featuretools::DfsConfig;
use feataug_ml::ModelKind;
use feataug_repro::to_aug_task;
use feataug_tabular::AggFunc;

fn main() {
    let dataset = feataug_datagen::tmall::generate(&feataug_datagen::GenConfig::small());
    let task = to_aug_task(&dataset);
    let model = ModelKind::GradientBoosting;
    let n_features = 12;

    println!(
        "Tmall-style next-purchase prediction ({} customers)",
        task.train.num_rows()
    );
    println!("planted signal: {}\n", dataset.signal_description);

    // Bare training table.
    let base = evaluate_table(
        &task.train,
        &task.label_column,
        &task.key_columns,
        task.task,
        model,
        1,
    );
    println!(
        "{:<22} {} = {:.4}",
        "no augmentation", base.metric, base.value
    );

    // Featuretools (predicate-free DFS).
    let dfs = DfsConfig {
        agg_funcs: vec![
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Count,
            AggFunc::Max,
            AggFunc::Min,
        ],
        ..DfsConfig::default()
    };
    let ft_table = featuretools_augment(&task, n_features, None, &dfs);
    let ft = evaluate_table(
        &ft_table,
        &task.label_column,
        &task.key_columns,
        task.task,
        model,
        1,
    );
    println!("{:<22} {} = {:.4}", "Featuretools", ft.metric, ft.value);

    // FeatAug (predicate-aware).
    let cfg = FeatAugConfig::fast(model).with_n_templates(4);
    let result = FeatAug::new(cfg).augment(&task);
    let fa = evaluate_table(
        &result.augmented_train,
        &task.label_column,
        &task.key_columns,
        task.task,
        model,
        1,
    );
    println!("{:<22} {} = {:.4}", "FeatAug", fa.metric, fa.value);

    println!("\ntop FeatAug queries:");
    for q in result.queries.iter().take(5) {
        println!("  loss {:>8.4}  {}", q.loss, q.query.to_sql("user_logs"));
    }
}
